module T = Dt_tensor.Tensor
module Ad = Dt_autodiff.Ad
module Nn = Dt_nn.Nn
module Model = Dt_surrogate.Model
module Rng = Dt_util.Rng
module Pool = Dt_util.Pool

type config = {
  seed : int;
  sim_multiplier : int;
  surrogate_passes : float;
  surrogate_lr : float;
  table_lr : float;
  table_passes : float;
  batch : int;
  table_batch : int;
  embed_dim : int;
  token_hidden : int;
  instr_hidden : int;
  token_layers : int;
  instr_layers : int;
  max_train_block_len : int;
  grad_clip : float;
  use_analytic : bool;
  head_hidden : int;
  log : string -> unit;
}

let default_config =
  {
    seed = 0;
    sim_multiplier = 10;
    surrogate_passes = 2.0;
    surrogate_lr = 0.001;
    table_lr = 0.05;
    table_passes = 1.0;
    batch = 256;
    table_batch = 64;
    embed_dim = 16;
    token_hidden = 32;
    instr_hidden = 32;
    token_layers = 4;
    instr_layers = 4;
    max_train_block_len = 24;
    grad_clip = 5.0;
    use_analytic = true;
    head_hidden = 16;
    log = ignore;
  }

let fast_config =
  {
    default_config with
    sim_multiplier = 4;
    surrogate_passes = 1.0;
    batch = 32;
    table_batch = 16;
    embed_dim = 8;
    token_hidden = 12;
    instr_hidden = 12;
    token_layers = 1;
    instr_layers = 1;
    max_train_block_len = 12;
  }

type sim_sample = {
  block_idx : int;
  per : float array array;
  global : float array;
  target : float;
}

(* Work within a minibatch is split into a {e fixed} number of shards,
   independent of how many domains execute them: each shard accumulates
   its gradients sequentially into its own replica, and the per-shard
   sums are reduced in shard-index order.  Floating-point results are
   therefore bit-identical whatever DIFFTUNE_DOMAINS says. *)
let n_shards = 16

let with_pool f =
  let pool = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let collect config (spec : Spec.t) blocks =
  let eligible =
    let acc = ref [] in
    Array.iteri
      (fun i b ->
        if Dt_x86.Block.length b <= config.max_train_block_len then
          acc := (i, b) :: !acc)
      blocks;
    Array.of_list (List.rev !acc)
  in
  if Array.length eligible = 0 then
    invalid_arg "Engine.collect: no training blocks within length limit";
  let n = config.sim_multiplier * Array.length eligible in
  let out =
    Array.make n { block_idx = 0; per = [||]; global = [||]; target = 0.0 }
  in
  (* One decorrelated RNG per sample (SplitMix-style seeding) makes each
     sample independent of execution order. *)
  let base = config.seed lxor 0x1d1f_f7 in
  with_pool (fun pool ->
      Pool.run pool n (fun i ->
          let rng = Rng.create (base + i) in
          let block_idx, block = eligible.(Rng.int rng (Array.length eligible)) in
          let table = spec.sample rng in
          let target = spec.timing table block in
          let per, global = Spec.normalize_block spec table block in
          out.(i) <- { block_idx; per; global; target }));
  out

let make_model config (spec : Spec.t) rng =
  let mcfg =
    {
      Model.embed_dim = config.embed_dim;
      token_hidden = config.token_hidden;
      instr_hidden = config.instr_hidden;
      token_layers = config.token_layers;
      instr_layers = config.instr_layers;
      with_params = true;
      per_instr_params = spec.per_width;
      global_params = spec.global_width;
      feature_width =
        (if config.use_analytic && spec.bounds <> None then Spec.n_bounds
         else 0);
      head_hidden = config.head_hidden;
    }
  in
  Model.create ~config:mcfg rng

(* A structural copy of [model] with the same parameter values; its store
   can be reduced back into the original's via [Store.accum_grads]. *)
let replicate model =
  let m = Model.create ~config:(Model.config model) (Rng.create 0) in
  Nn.Store.copy_values ~src:(Model.store model) ~dst:(Model.store m);
  m

let sample_loss model ctx (spec : Spec.t) block (s : sim_sample) =
  let params =
    {
      Model.per_instr =
        Array.map (fun v -> Ad.constant ctx (T.vector v)) s.per;
      global =
        (if Array.length s.global = 0 then None
         else Some (Ad.constant ctx (T.vector s.global)));
    }
  in
  let features =
    if (Model.config model).feature_width = 0 then None
    else
      match spec.bounds with
      | Some f ->
          Some (f ctx block ~per:params.per_instr ~global:params.global)
      | None -> None
  in
  let pred = Model.predict model ctx block ~params:(Some params) ~features in
  Ad.mape ctx pred ~target:(Float.max s.target 1e-3)

(* The epoch shuffles consume the RNG sequentially, so the whole visit
   order is fixed up front; shards then index into it. *)
let make_schedule rng ~n ~steps =
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  Array.init steps (fun step ->
      if step > 0 && step mod n = 0 then Rng.shuffle rng order;
      order.(step mod n))

(* Bounds of shard [k] within [lo, lo + size). *)
let shard_range ~lo ~size k =
  (lo + (k * size / n_shards), lo + ((k + 1) * size / n_shards))

let train_surrogate config spec model (data : sim_sample array) blocks =
  let rng = Rng.create (config.seed lxor 0x5e_ed) in
  let store = Model.store model in
  let opt = Nn.Optimizer.adam store ~lr:config.surrogate_lr in
  let n = Array.length data in
  let steps = int_of_float (config.surrogate_passes *. float_of_int n) in
  let sched = make_schedule rng ~n ~steps in
  let losses = Array.make (max steps 1) 0.0 in
  let replicas = Array.init n_shards (fun _ -> replicate model) in
  let ctxs = Array.init n_shards (fun _ -> Ad.new_ctx ()) in
  let running = Dt_util.Stats.Welford.create () in
  let last_avg = ref Float.nan in
  let lr_drop_step = 2 * steps / 3 in
  let lr_dropped = ref false in
  with_pool (fun pool ->
      let batch_start = ref 0 in
      while !batch_start < steps do
        let b0 = !batch_start in
        let bsize = min config.batch (steps - b0) in
        Pool.run pool n_shards (fun k ->
            let lo, hi = shard_range ~lo:b0 ~size:bsize k in
            let m = replicas.(k) and ctx = ctxs.(k) in
            for step = lo to hi - 1 do
              Ad.reset ctx;
              let s = data.(sched.(step)) in
              let loss = sample_loss m ctx spec blocks.(s.block_idx) s in
              Ad.backward ctx loss;
              losses.(step) <- Ad.scalar_value loss
            done);
        Array.iter
          (fun m ->
            let rs = Model.store m in
            Nn.Store.accum_grads ~src:rs ~dst:store;
            Nn.Store.zero_grads rs)
          replicas;
        Nn.Store.clip_grads store
          ~max_norm:(config.grad_clip *. float_of_int bsize);
        if (not !lr_dropped) && lr_drop_step < b0 + bsize then begin
          Nn.Optimizer.set_lr opt (config.surrogate_lr *. 0.3);
          lr_dropped := true
        end;
        Nn.Optimizer.step opt ~batch:bsize;
        Array.iter
          (fun m -> Nn.Store.copy_values ~src:store ~dst:(Model.store m))
          replicas;
        for step = b0 to b0 + bsize - 1 do
          Dt_util.Stats.Welford.add running losses.(step);
          if (step + 1) mod 2000 = 0 then begin
            last_avg := Dt_util.Stats.Welford.mean running;
            config.log
              (Printf.sprintf "surrogate step %d/%d loss %.3f" (step + 1)
                 steps !last_avg)
          end
        done;
        batch_start := b0 + bsize
      done);
  if Dt_util.Stats.Welford.count running > 0 then
    Dt_util.Stats.Welford.mean running
  else Float.nan

(* Extract the current relaxed table into raw integer space. *)
let extract_table (spec : Spec.t) theta_per theta_global =
  let n_opc = Dt_x86.Opcode.count in
  {
    Spec.per =
      Array.init n_opc (fun i ->
          Array.init spec.per_width (fun j ->
              Float.round (Float.abs (T.get theta_per i j))
              +. spec.per_lower.(j)));
    global =
      Array.init spec.global_width (fun j ->
          Float.round (Float.abs (T.get theta_global 0 j))
          +. spec.global_lower.(j));
  }

(* True-simulator validation error of a raw table on a block sample. *)
let validation_error (spec : Spec.t) table valid =
  let acc = ref 0.0 in
  Array.iter
    (fun (b, y) -> acc := !acc +. (Float.abs (spec.timing table b -. y) /. y))
    valid;
  !acc /. float_of_int (Array.length valid)

(* Per-shard state for the parameter-descent phase: its own relaxed
   table (leaves + store) and its own frozen-surrogate replica. *)
type theta_replica = {
  tstore : Nn.Store.t;
  pnode : Ad.node;
  gnode : Ad.node;
  smodel : Model.t;
  tctx : Ad.ctx;
}

let optimize_table ?init ?(valid = [||]) config (spec : Spec.t) model ~train =
  let rng = Rng.create (config.seed lxor 0x7ab1e) in
  (* Initialize the relaxed table in offset space (value - lower bound):
     a random draw from the sampling distribution, per the paper, unless
     a warm start is provided (iterative refinement). *)
  let init = match init with Some t -> t | None -> spec.sample rng in
  let n_opc = Dt_x86.Opcode.count in
  let make_theta () =
    let theta_per = T.zeros ~rows:n_opc ~cols:(max 1 spec.per_width) in
    for i = 0 to n_opc - 1 do
      for j = 0 to spec.per_width - 1 do
        T.set theta_per i j (init.per.(i).(j) -. spec.per_lower.(j))
      done
    done;
    let theta_global = T.zeros ~rows:1 ~cols:(max 1 spec.global_width) in
    for j = 0 to spec.global_width - 1 do
      T.set theta_global 0 j (init.global.(j) -. spec.global_lower.(j))
    done;
    let store = Nn.Store.create () in
    let pnode = Nn.Store.param store ~name:"theta.per" theta_per in
    let gnode = Nn.Store.param store ~name:"theta.global" theta_global in
    (store, theta_per, theta_global, pnode, gnode)
  in
  let theta_store, theta_per, theta_global, _, _ = make_theta () in
  let replicas =
    Array.init n_shards (fun _ ->
        let tstore, _, _, pnode, gnode = make_theta () in
        {
          tstore;
          pnode;
          gnode;
          smodel = replicate model;
          tctx = Ad.new_ctx ();
        })
  in
  let opt = Nn.Optimizer.adam theta_store ~lr:config.table_lr in
  let per_scale = T.vector (Array.copy spec.per_scale) in
  let global_scale =
    (* Specs without globals (e.g. write-latency-only) have an empty
       scale vector; the node is never built in that case. *)
    if spec.global_width = 0 then T.scalar 0.0
    else T.vector (Array.copy spec.global_scale)
  in
  let eligible =
    Array.of_list
      (List.filter
         (fun (b, _) -> Dt_x86.Block.length b <= config.max_train_block_len)
         (Array.to_list train))
  in
  let n = Array.length eligible in
  if n = 0 then invalid_arg "Engine.optimize_table: no usable training blocks";
  let steps = int_of_float (config.table_passes *. float_of_int n) in
  let sched = make_schedule rng ~n ~steps in
  (* Validation-gated extraction: periodically extract the integer table
     and keep the snapshot with the lowest true-simulator error on the
     validation split (the split the paper reserves for development
     decisions).  Gradient descent through an imperfect surrogate can
     wander; selection on the *original* simulator is cheap and unbiased
     with respect to the test set. *)
  let valid =
    if Array.length valid > 256 then Array.sub valid 0 256 else valid
  in
  let best_table = ref None in
  let consider () =
    if Array.length valid > 0 then begin
      let candidate = extract_table spec theta_per theta_global in
      let err = validation_error spec candidate valid in
      match !best_table with
      | Some (_, best_err) when best_err <= err -> ()
      | _ -> best_table := Some (candidate, err)
    end
  in
  let snapshot_every = max 500 (steps / 12) in
  let shard_task r lo hi =
    let ctx = r.tctx in
    for step = lo to hi - 1 do
      Ad.reset ctx;
      let block, y = eligible.(sched.(step)) in
      let scale_node v = Ad.constant ctx v in
      let per_inputs =
        Array.map
          (fun (instr : Dt_x86.Instruction.t) ->
            let row = Ad.row ctx ~m:r.pnode instr.opcode.index in
            let row = Ad.abs_ ctx row in
            let row =
              if spec.per_width = T.size (Ad.value row) then row
              else Ad.slice ctx row ~pos:0 ~len:spec.per_width
            in
            Ad.mul ctx row (scale_node per_scale))
          block.instrs
      in
      let global_input =
        if spec.global_width = 0 then None
        else
          let gview = Ad.row ctx ~m:r.gnode 0 in
          let g = Ad.abs_ ctx gview in
          Some (Ad.mul ctx g (scale_node global_scale))
      in
      let params = { Model.per_instr = per_inputs; global = global_input } in
      let features =
        if (Model.config r.smodel).feature_width = 0 then None
        else
          match spec.bounds with
          | Some f -> Some (f ctx block ~per:per_inputs ~global:global_input)
          | None -> None
      in
      let pred =
        Model.predict r.smodel ctx block ~params:(Some params) ~features
      in
      let loss = Ad.mape ctx pred ~target:(Float.max y 1e-3) in
      Ad.backward ctx loss
    done
  in
  with_pool (fun pool ->
      let batch_start = ref 0 in
      while !batch_start < steps do
        let b0 = !batch_start in
        let bsize = min config.table_batch (steps - b0) in
        Array.iter
          (fun r -> Nn.Store.copy_values ~src:theta_store ~dst:r.tstore)
          replicas;
        Pool.run pool n_shards (fun k ->
            let lo, hi = shard_range ~lo:b0 ~size:bsize k in
            shard_task replicas.(k) lo hi);
        Array.iter
          (fun r ->
            Nn.Store.accum_grads ~src:r.tstore ~dst:theta_store;
            Nn.Store.zero_grads r.tstore;
            (* The surrogate is frozen: its accumulated gradients are
               simply discarded. *)
            Nn.Store.zero_grads (Model.store r.smodel))
          replicas;
        Nn.Optimizer.step opt ~batch:bsize;
        (* Keep |theta| inside the sampling distribution's support: the
           surrogate cannot be trusted to extrapolate outside the region
           it was trained on (paper Section VII, "Sampling
           distributions"). *)
        for i = 0 to n_opc - 1 do
          for j = 0 to spec.per_width - 1 do
            let hi = spec.per_upper.(j) -. spec.per_lower.(j) in
            let v = T.get theta_per i j in
            if Float.abs v > hi then
              T.set theta_per i j (if v < 0.0 then -.hi else hi)
          done
        done;
        for j = 0 to spec.global_width - 1 do
          let hi = spec.global_upper.(j) -. spec.global_lower.(j) in
          let v = T.get theta_global 0 j in
          if Float.abs v > hi then
            T.set theta_global 0 j (if v < 0.0 then -.hi else hi)
        done;
        if (b0 + bsize) / snapshot_every > b0 / snapshot_every then
          consider ();
        if (b0 + bsize) / 2000 > b0 / 2000 then
          config.log (Printf.sprintf "table step %d/%d" (b0 + bsize) steps);
        batch_start := b0 + bsize
      done);
  (* Extraction: |theta| + lower bound, rounded; prefer the best
     validation snapshot when a validation split was provided. *)
  let final = extract_table spec theta_per theta_global in
  match !best_table with
  | None -> final
  | Some (best, best_err) ->
      let final_err = validation_error spec final valid in
      if final_err <= best_err then final else best

type result = {
  table : Spec.table;
  model : Model.t;
  surrogate_loss : float;
}

let learn ?(valid = [||]) config (spec : Spec.t) ~train =
  let rng = Rng.create config.seed in
  config.log
    (Printf.sprintf "difftune[%s]: collecting simulated dataset" spec.name);
  let blocks = Array.map fst train in
  let data = collect config spec blocks in
  config.log
    (Printf.sprintf "difftune[%s]: training surrogate on %d samples" spec.name
       (Array.length data));
  let model = make_model config spec rng in
  let surrogate_loss = train_surrogate config spec model data blocks in
  config.log
    (Printf.sprintf "difftune[%s]: optimizing parameter table" spec.name);
  let table = optimize_table ~valid config spec model ~train in
  { table; model; surrogate_loss }

(* ------------------------------------------------------------------ *)
(* Iterative refinement (paper Section VII, after Shirobokov et al.):   *)
(* re-collect the simulated dataset in a shrinking neighbourhood of the *)
(* current parameter estimate, re-train the surrogate there, and        *)
(* continue the parameter descent from the previous estimate.  This     *)
(* removes the dependence on a hand-specified global sampling           *)
(* distribution: the surrogate only ever needs local fidelity.          *)
(* ------------------------------------------------------------------ *)

let local_sample (spec : Spec.t) ~center ~radius rng =
  let jitter v lo hi =
    let span = radius *. (hi -. lo) in
    Float.min hi (Float.max lo (v +. Rng.float_range rng (-.span) span))
  in
  (* An epsilon of global samples keeps coverage of the full support. *)
  if Rng.bernoulli rng 0.2 then spec.sample rng
  else
    {
      Spec.per =
        Array.map
          (fun row ->
            Array.mapi
              (fun j v ->
                Float.round (jitter v spec.per_lower.(j) spec.per_upper.(j)))
              row)
          center.Spec.per;
      global =
        Array.mapi
          (fun j v ->
            Float.round (jitter v spec.global_lower.(j) spec.global_upper.(j)))
          center.Spec.global;
    }

let learn_iterative ?(valid = [||]) config ?(rounds = 3) (spec : Spec.t)
    ~train =
  if rounds < 1 then invalid_arg "Engine.learn_iterative: rounds must be >= 1";
  let rng = Rng.create config.seed in
  let blocks = Array.map fst train in
  let model = make_model config spec rng in
  (* Round budgets: split the configured budget across rounds. *)
  let per_round =
    {
      config with
      sim_multiplier = max 1 (config.sim_multiplier / rounds);
      surrogate_passes = config.surrogate_passes;
      table_passes = Float.max 1.0 (config.table_passes /. float_of_int rounds);
    }
  in
  let center = ref (spec.sample (Rng.create (config.seed lxor 0xce11e))) in
  let loss = ref Float.nan in
  for round = 1 to rounds do
    let radius = 0.5 /. float_of_int round in
    let local_spec =
      if round = 1 then spec
      else
        { spec with sample = (fun rng -> local_sample spec ~center:!center ~radius rng) }
    in
    config.log
      (Printf.sprintf "difftune[%s]: refinement round %d/%d (radius %.2f)"
         spec.name round rounds radius);
    let data = collect { per_round with seed = config.seed + round } local_spec blocks in
    loss := train_surrogate { per_round with seed = config.seed + round }
        local_spec model data blocks;
    let table =
      optimize_table ~init:!center ~valid
        { per_round with seed = config.seed + round }
        spec model ~train
    in
    center := table
  done;
  { table = !center; model; surrogate_loss = !loss }

(* ------------------------------------------------------------------ *)
(* Ithemal baseline: no parameter inputs, trained on ground truth.      *)
(* ------------------------------------------------------------------ *)

let spec_features (spec : Spec.t) ~reference block =
  match spec.bounds with
  | None -> [||]
  | Some f ->
      let ctx = Ad.new_ctx () in
      let per, global = Spec.normalize_block spec reference block in
      let per = Array.map (fun v -> Ad.constant ctx (T.vector v)) per in
      let global =
        if Array.length global = 0 then None
        else Some (Ad.constant ctx (T.vector global))
      in
      T.to_array (Ad.value (f ctx block ~per ~global))

let make_ithemal_model config ~feature_width rng =
  let mcfg =
    {
      Model.embed_dim = config.embed_dim;
      token_hidden = config.token_hidden;
      instr_hidden = config.instr_hidden;
      token_layers = config.token_layers;
      instr_layers = config.instr_layers;
      with_params = false;
      per_instr_params = 0;
      global_params = 0;
      feature_width = (if config.use_analytic then feature_width else 0);
      head_hidden = config.head_hidden;
    }
  in
  Model.create ~config:mcfg rng

let train_ithemal config ~features ~train =
  let rng = Rng.create (config.seed lxor 0x17e3a1) in
  let feature_width =
    match (features, train) with
    | Some f, (b, _) :: _ -> Array.length (f b)
    | Some _, [] -> invalid_arg "Engine.train_ithemal: empty training set"
    | None, _ -> 0
  in
  let train = Array.of_list train in
  let model = make_ithemal_model config ~feature_width rng in
  let store = Model.store model in
  let opt = Nn.Optimizer.adam store ~lr:config.surrogate_lr in
  let eligible =
    Array.of_list
      (List.filter
         (fun (b, _) -> Dt_x86.Block.length b <= config.max_train_block_len)
         (Array.to_list train))
  in
  let n = Array.length eligible in
  if n = 0 then invalid_arg "Engine.train_ithemal: no usable training blocks";
  (* Features are static per block: precompute them once. *)
  let feats = Hashtbl.create n in
  (match features with
  | None -> ()
  | Some f ->
      Array.iter
        (fun (b, _) ->
          Hashtbl.replace feats (Dt_x86.Block.to_string b) (f b))
        eligible);
  (* Match the surrogate's optimization budget per sample. *)
  let steps =
    int_of_float
      (config.surrogate_passes *. float_of_int (config.sim_multiplier * n))
  in
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  let in_batch = ref 0 in
  let ctx = Ad.new_ctx () in
  for step = 0 to steps - 1 do
    let block, y = eligible.(order.(step mod n)) in
    if step > 0 && step mod n = 0 then Rng.shuffle rng order;
    Ad.reset ctx;
    let features =
      if (Model.config model).feature_width = 0 then None
      else
        Some
          (Ad.constant ctx
             (T.vector (Hashtbl.find feats (Dt_x86.Block.to_string block))))
    in
    let pred = Model.predict model ctx block ~params:None ~features in
    let loss = Ad.mape ctx pred ~target:(Float.max y 1e-3) in
    Ad.backward ctx loss;
    incr in_batch;
    if !in_batch = config.batch || step = steps - 1 then begin
      Nn.Store.clip_grads store
        ~max_norm:(config.grad_clip *. float_of_int !in_batch);
      Nn.Optimizer.step opt ~batch:!in_batch;
      in_batch := 0
    end;
    if step = (2 * steps) / 3 then
      Nn.Optimizer.set_lr opt (config.surrogate_lr *. 0.3);
    if (step + 1) mod 5000 = 0 then
      config.log (Printf.sprintf "ithemal step %d/%d" (step + 1) steps)
  done;
  model

let ithemal_predict ~features model block =
  match features with
  | Some f when (Model.config model).feature_width <> 0 ->
      Model.predict_value model block ~params:None ~features:(f block) ()
  | _ -> Model.predict_value model block ~params:None ()
