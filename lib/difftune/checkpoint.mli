(** Atomic, versioned, integrity-checked snapshot files.

    The engine persists pipeline state (model weights, Adam moments, the
    relaxed table, RNG state, phase cursors) so a killed run resumes from
    [?checkpoint_dir] bit-identically instead of starting over.  This
    module owns the container format; the engine owns the payload layout
    via the {!Enc}/{!Dec} combinators:

    {v
    "DTCK" | version (8-byte LE int) | payload bytes | CRC-32(payload)
    v}

    Writes go to a temp file in the same directory followed by
    [Sys.rename], so a crash mid-write can never tear an existing
    checkpoint — readers see either the old complete file or the new
    one.  {!load} verifies magic, version, and CRC, and runs the decoder
    under an exception barrier: every failure mode (missing file, torn
    temp, truncation, bit rot, stale format) comes back as a clean
    [Error of Fault.t], never an escaping exception.

    A checkpoint directory is owned by one process at a time; concurrent
    writers of the {e same} checkpoint name are not supported.

    The [ckpt.truncate] {!Dt_util.Faultsim} site fires once per {!save},
    after the rename; when armed it truncates the just-written file to
    half its size so recovery from torn checkpoints can be exercised
    under [dune runtest]. *)

(** Payload writers.  All integers are 64-bit little-endian; floats are
    their IEEE-754 bit patterns, so round-trips are bit-exact. *)
module Enc : sig
  val int : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int64 -> unit
  val bool : Buffer.t -> bool -> unit
  val float : Buffer.t -> float -> unit
  val string : Buffer.t -> string -> unit
  val float_array : Buffer.t -> float array -> unit
  val array : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
  val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
  val option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
end

(** Payload readers, symmetric to {!Enc}.  Raise {!Dec.Corrupt} on a
    malformed payload; {!load} catches it. *)
module Dec : sig
  type t

  exception Corrupt of string

  val int : t -> int
  val i64 : t -> int64
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val float_array : t -> float array
  val array : t -> (t -> 'a) -> 'a array
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
end

(** Current container format version. *)
val version : int

(** [path ~dir ~name] — the file a checkpoint lives in:
    [dir/name.ckpt]. *)
val path : dir:string -> name:string -> string

(** [save ~dir ~name write] serializes a payload with [write] and
    atomically installs it as [dir/name.ckpt], creating [dir] (and
    parents) as needed. *)
val save : dir:string -> name:string -> (Buffer.t -> unit) -> unit

(** [load ~dir ~name read] validates the container and decodes the
    payload with [read].  All failures are values:
    [Error (Checkpoint_missing _)] when the file does not exist,
    [Error (Checkpoint_version _)] on a format-version mismatch,
    [Error (Checkpoint_corrupt _)] on bad magic, truncation, CRC
    mismatch, or a decoder error. *)
val load : dir:string -> name:string -> (Dec.t -> 'a) -> ('a, Fault.t) result

(** [remove ~dir ~name] deletes a checkpoint if present. *)
val remove : dir:string -> name:string -> unit
