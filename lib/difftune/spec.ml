module Rng = Dt_util.Rng
module Ad = Dt_autodiff.Ad

type table = { per : float array array; global : float array }

type t = {
  name : string;
  per_width : int;
  global_width : int;
  per_lower : float array;
  global_lower : float array;
  per_upper : float array;
  global_upper : float array;
  per_scale : float array;
  global_scale : float array;
  sample : Rng.t -> table;
  timing : table -> Dt_x86.Block.t -> float;
  bounds :
    (Ad.ctx ->
     Dt_x86.Block.t ->
     per:Ad.node array ->
     global:Ad.node option ->
     Ad.node)
    option;
}

let n_bounds = 3

(* ---- differentiable bound helpers ---------------------------------- *)

let scalar_const ctx v = Ad.scalar ctx v

let sub ctx a b = Ad.add ctx a (Ad.scale ctx b (-1.0))

(* Longest dependency chain per iteration, from per-position latency
   nodes: propagate issue times through two unrolled copies and take the
   difference of the completion fronts (the steady-state slope). *)
let chain_bound ctx (block : Dt_x86.Block.t) ~edge_latency =
  let len = Array.length block.instrs in
  let edges = Dt_mca.Pipeline.dependency_edges block in
  let issue = Array.make (2 * len) None in
  let front = Array.make 2 None in
  for copy = 0 to 1 do
    for i = 0 to len - 1 do
      let pos = (copy * len) + i in
      let start =
        Array.fold_left
          (fun acc (dist, slot) ->
            let p = pos - dist in
            if p < 0 then acc
            else
              let sp =
                match issue.(p) with Some s -> s | None -> assert false
              in
              let cand = Ad.add ctx sp (edge_latency ~producer:(p mod len) ~consumer:i ~slot) in
              match acc with
              | None -> Some cand
              | Some a -> Some (Ad.max2 ctx a cand))
          None edges.(i)
      in
      let start = match start with Some s -> s | None -> scalar_const ctx 0.0 in
      issue.(pos) <- Some start;
      front.(copy) <-
        (match front.(copy) with
        | None -> Some start
        | Some f -> Some (Ad.max2 ctx f start))
    done
  done;
  match (front.(0), front.(1)) with
  | Some f0, Some f1 -> Ad.relu ctx (sub ctx f1 f0)
  | _ -> scalar_const ctx 0.0

let copy_table t =
  { per = Array.map Array.copy t.per; global = Array.copy t.global }

let round_value ~lower v = Float.max lower (Float.round v)

let round_table spec t =
  {
    per =
      Array.map
        (fun row ->
          Array.mapi (fun j v -> round_value ~lower:spec.per_lower.(j) v) row)
        t.per;
    global =
      Array.mapi
        (fun j v -> round_value ~lower:spec.global_lower.(j) v)
        t.global;
  }

let normalize_block spec table (block : Dt_x86.Block.t) =
  let per =
    Array.map
      (fun (instr : Dt_x86.Instruction.t) ->
        let row = table.per.(instr.opcode.index) in
        Array.init spec.per_width (fun j ->
            (row.(j) -. spec.per_lower.(j)) *. spec.per_scale.(j)))
      block.instrs
  in
  let global =
    Array.init spec.global_width (fun j ->
        (table.global.(j) -. spec.global_lower.(j)) *. spec.global_scale.(j))
  in
  (per, global)

let flatten spec table =
  let n = Dt_x86.Opcode.count in
  let out = Array.make (spec.global_width + (n * spec.per_width)) 0.0 in
  Array.blit table.global 0 out 0 spec.global_width;
  for i = 0 to n - 1 do
    Array.blit table.per.(i) 0 out
      (spec.global_width + (i * spec.per_width))
      spec.per_width
  done;
  out

let unflatten spec v =
  let n = Dt_x86.Opcode.count in
  if Array.length v <> spec.global_width + (n * spec.per_width) then
    invalid_arg "Spec.unflatten: wrong length";
  {
    global = Array.sub v 0 spec.global_width;
    per =
      Array.init n (fun i ->
          Array.sub v (spec.global_width + (i * spec.per_width)) spec.per_width);
  }

(* ------------------------------------------------------------------ *)
(* llvm-mca: full parameter set.                                       *)
(* ------------------------------------------------------------------ *)

let n_ra = Dt_mca.Params.num_read_advance
let n_ports = Dt_mca.Params.num_ports

(* Row layout: [NumMicroOps; WriteLatency; RA0..RA2; PM0..PM9]. *)
let mca_per_width = 2 + n_ra + n_ports

let mca_table_of_params (p : Dt_mca.Params.t) =
  let row i =
    let r = Array.make mca_per_width 0.0 in
    r.(0) <- float_of_int p.num_micro_ops.(i);
    r.(1) <- float_of_int p.write_latency.(i);
    for k = 0 to n_ra - 1 do
      r.(2 + k) <- float_of_int p.read_advance.(i).(k)
    done;
    for q = 0 to n_ports - 1 do
      r.(2 + n_ra + q) <- float_of_int p.port_map.(i).(q)
    done;
    r
  in
  {
    per = Array.init Dt_x86.Opcode.count row;
    global =
      [| float_of_int p.dispatch_width; float_of_int p.reorder_buffer_size |];
  }

let mca_params_of_table (t : table) : Dt_mca.Params.t =
  let n = Dt_x86.Opcode.count in
  let geti ~min_ v = max min_ (int_of_float (Float.round v)) in
  {
    dispatch_width = geti ~min_:1 t.global.(0);
    reorder_buffer_size = geti ~min_:1 t.global.(1);
    num_micro_ops = Array.init n (fun i -> geti ~min_:1 t.per.(i).(0));
    write_latency = Array.init n (fun i -> geti ~min_:0 t.per.(i).(1));
    read_advance =
      Array.init n (fun i ->
          Array.init n_ra (fun k -> geti ~min_:0 t.per.(i).(2 + k)));
    port_map =
      Array.init n (fun i ->
          Array.init n_ports (fun q -> geti ~min_:0 t.per.(i).(2 + n_ra + q)));
    zero_idiom_enabled = Array.make n false;
  }

(* Sampling distributions of Section V-A. *)
let sample_mca_row rng =
  let r = Array.make mca_per_width 0.0 in
  r.(0) <- float_of_int (Rng.int_range rng 1 10);
  r.(1) <- float_of_int (Rng.int_range rng 0 5);
  for k = 0 to n_ra - 1 do
    r.(2 + k) <- float_of_int (Rng.int_range rng 0 5)
  done;
  (* 0-2 cycles on 0-2 randomly selected ports. *)
  let k_ports = Rng.int_range rng 0 2 in
  for _ = 1 to k_ports do
    let q = Rng.int rng n_ports in
    r.(2 + n_ra + q) <- float_of_int (Rng.int_range rng 1 2)
  done;
  r

(* Differentiable bounds for the full llvm-mca table.  The per-instruction
   inputs are normalized (lower bound subtracted, scaled by 0.2); unscale
   with affine maps so the bounds are in raw cycles.  [flag_of], when
   given, yields the relaxed zero-idiom flag node in [0,1] for a block
   position; the effective chain latency is then wl * (1 - flag). *)
let mca_bounds_core ?flag_of ctx (block : Dt_x86.Block.t) ~per ~global =
  let inv = 5.0 in
  let len = Array.length block.instrs in
  let uops i = Ad.affine ctx (Ad.slice ctx per.(i) ~pos:0 ~len:1) ~mul:inv ~add:1.0 in
  let wl_nodes =
    Array.init len (fun i ->
        let wl =
          Ad.affine ctx (Ad.slice ctx per.(i) ~pos:1 ~len:1) ~mul:inv ~add:0.0
        in
        match flag_of with
        | Some f when Dt_x86.Instruction.is_zero_idiom block.instrs.(i) ->
            (* Relaxed elimination: latency scales with (1 - flag). *)
            let keep =
              Ad.relu ctx (Ad.affine ctx (f i) ~mul:(-1.0) ~add:1.0)
            in
            Ad.mul ctx wl keep
        | _ -> wl)
  in
  let ra i slot =
    Ad.affine ctx (Ad.slice ctx per.(i) ~pos:(2 + slot) ~len:1) ~mul:inv ~add:0.0
  in
  let pm i =
    Ad.affine ctx (Ad.slice ctx per.(i) ~pos:(2 + n_ra) ~len:n_ports) ~mul:inv
      ~add:0.0
  in
  let dw =
    match global with
    | Some g -> Ad.affine ctx (Ad.slice ctx g ~pos:0 ~len:1) ~mul:5.0 ~add:1.0
    | None -> scalar_const ctx 4.0
  in
  let total_uops = ref (uops 0) in
  for i = 1 to len - 1 do
    total_uops := Ad.add ctx !total_uops (uops i)
  done;
  let frontend = Ad.div ctx !total_uops dw in
  let pressure = ref (pm 0) in
  for i = 1 to len - 1 do
    pressure := Ad.add ctx !pressure (pm i)
  done;
  let port_bound = Ad.reduce_max ctx !pressure in
  let edge_latency ~producer ~consumer ~slot =
    Ad.relu ctx (sub ctx wl_nodes.(producer) (ra consumer slot))
  in
  let chain = chain_bound ctx block ~edge_latency in
  Ad.concat ctx [ frontend; port_bound; chain ]

let mca_bounds ctx block ~per ~global = mca_bounds_core ctx block ~per ~global

let mca_full _uarch =
  let per_lower = Array.make mca_per_width 0.0 in
  per_lower.(0) <- 1.0;
  let per_upper = Array.make mca_per_width 5.0 in
  per_upper.(0) <- 10.0;
  for q = 0 to n_ports - 1 do
    per_upper.(2 + n_ra + q) <- 2.0
  done;
  let per_scale = Array.make mca_per_width 0.2 in
  {
    name = "llvm-mca/full";
    per_width = mca_per_width;
    global_width = 2;
    per_lower;
    global_lower = [| 1.0; 1.0 |];
    per_upper;
    global_upper = [| 10.0; 250.0 |];
    per_scale;
    global_scale = [| 0.2; 0.01 |];
    sample =
      (fun rng ->
        {
          per = Array.init Dt_x86.Opcode.count (fun _ -> sample_mca_row rng);
          global =
            [|
              float_of_int (Rng.int_range rng 1 10);
              float_of_int (Rng.int_range rng 50 250);
            |];
        });
    timing =
      (fun t block ->
        Dt_mca.Pipeline.timing_unchecked (mca_params_of_table t) block);
    bounds = Some mca_bounds;
  }

(* ------------------------------------------------------------------ *)
(* llvm-mca: WriteLatency-only ablation (Section VI-B).                *)
(* ------------------------------------------------------------------ *)

let mca_write_latency uarch =
  let default = Dt_mca.Params.default uarch in
  (* Bounds with every non-WriteLatency parameter fixed at its default:
     frontend and port pressure are constants; the chain flows through
     the learned latencies (scale 0.2 -> unscale x5). *)
  let wl_bounds ctx (block : Dt_x86.Block.t) ~per ~global =
    ignore global;
    let len = Array.length block.instrs in
    let opcode i = block.instrs.(i).Dt_x86.Instruction.opcode.index in
    let total_uops = ref 0 in
    let pressure = Array.make Dt_mca.Params.num_ports 0 in
    for i = 0 to len - 1 do
      total_uops := !total_uops + default.num_micro_ops.(opcode i);
      Array.iteri
        (fun q c -> pressure.(q) <- pressure.(q) + c)
        default.port_map.(opcode i)
    done;
    let frontend =
      scalar_const ctx
        (float_of_int !total_uops /. float_of_int default.dispatch_width)
    in
    let port_bound =
      scalar_const ctx (float_of_int (Array.fold_left max 0 pressure))
    in
    let wl_nodes =
      Array.init len (fun i ->
          Ad.affine ctx (Ad.slice ctx per.(i) ~pos:0 ~len:1) ~mul:5.0 ~add:0.0)
    in
    let edge_latency ~producer ~consumer ~slot =
      let ra = float_of_int default.read_advance.(opcode consumer).(slot) in
      Ad.relu ctx (Ad.affine ctx wl_nodes.(producer) ~mul:1.0 ~add:(-.ra))
    in
    let chain = chain_bound ctx block ~edge_latency in
    Ad.concat ctx [ frontend; port_bound; chain ]
  in
  {
    name = "llvm-mca/write-latency";
    per_width = 1;
    global_width = 0;
    per_lower = [| 0.0 |];
    global_lower = [||];
    per_upper = [| 10.0 |];
    global_upper = [||];
    per_scale = [| 0.2 |];
    global_scale = [||];
    sample =
      (fun rng ->
        {
          per =
            Array.init Dt_x86.Opcode.count (fun _ ->
                [| float_of_int (Rng.int_range rng 0 10) |]);
          global = [||];
        });
    timing =
      (fun t block ->
        let p = Dt_mca.Params.copy default in
        let p =
          {
            p with
            Dt_mca.Params.write_latency =
              Array.init Dt_x86.Opcode.count (fun i ->
                  max 0 (int_of_float (Float.round t.per.(i).(0))));
          }
        in
        Dt_mca.Pipeline.timing_unchecked p block);
    bounds = Some wl_bounds;
  }

(* ------------------------------------------------------------------ *)
(* llvm_sim (Table VII): WriteLatency + PortMap micro-op counts.        *)
(* ------------------------------------------------------------------ *)

let usim_per_width = 1 + Dt_usim.Usim.num_ports

let usim_spec _uarch =
  let n = Dt_x86.Opcode.count in
  let usim_bounds ctx (block : Dt_x86.Block.t) ~per ~global =
    ignore global;
    let len = Array.length block.instrs in
    let one = scalar_const ctx 1.0 in
    let pm i =
      Ad.affine ctx
        (Ad.slice ctx per.(i) ~pos:1 ~len:Dt_usim.Usim.num_ports)
        ~mul:5.0 ~add:0.0
    in
    let pms = Array.init len pm in
    (* Micro-op count of an all-zero PortMap row is still 1. *)
    let uops i = Ad.max2 ctx (Ad.sum_all ctx pms.(i)) one in
    let total_uops = ref (uops 0) in
    for i = 1 to len - 1 do
      total_uops := Ad.add ctx !total_uops (uops i)
    done;
    let frontend = Ad.scale ctx !total_uops 0.25 (* decode width 4 *) in
    let pressure = ref pms.(0) in
    for i = 1 to len - 1 do
      pressure := Ad.add ctx !pressure pms.(i)
    done;
    let port_bound = Ad.reduce_max ctx !pressure in
    let wl_nodes =
      Array.init len (fun i ->
          Ad.affine ctx (Ad.slice ctx per.(i) ~pos:0 ~len:1) ~mul:5.0 ~add:0.0)
    in
    let edge_latency ~producer ~consumer:_ ~slot:_ = wl_nodes.(producer) in
    let chain = chain_bound ctx block ~edge_latency in
    Ad.concat ctx [ frontend; port_bound; chain ]
  in
  {
    name = "llvm_sim";
    per_width = usim_per_width;
    global_width = 0;
    per_lower = Array.make usim_per_width 0.0;
    global_lower = [||];
    per_upper =
      (let u = Array.make usim_per_width 2.0 in
       u.(0) <- 5.0;
       u);
    global_upper = [||];
    per_scale = Array.make usim_per_width 0.2;
    global_scale = [||];
    sample =
      (fun rng ->
        {
          per =
            Array.init n (fun _ ->
                let r = Array.make usim_per_width 0.0 in
                r.(0) <- float_of_int (Rng.int_range rng 0 5);
                let k_ports = Rng.int_range rng 0 2 in
                for _ = 1 to k_ports do
                  let q = Rng.int rng Dt_usim.Usim.num_ports in
                  r.(1 + q) <- float_of_int (Rng.int_range rng 1 2)
                done;
                r);
          global = [||];
        });
    timing =
      (fun t block ->
        let geti ~min_ v = max min_ (int_of_float (Float.round v)) in
        let p : Dt_usim.Usim.params =
          {
            write_latency = Array.init n (fun i -> geti ~min_:0 t.per.(i).(0));
            port_map =
              Array.init n (fun i ->
                  Array.init Dt_usim.Usim.num_ports (fun q ->
                      geti ~min_:0 t.per.(i).(1 + q)));
          }
        in
        Dt_usim.Usim.timing p block);
    bounds = Some usim_bounds;
  }

let search_bounds spec =
  let dim = spec.global_width + (Dt_x86.Opcode.count * spec.per_width) in
  let lower = Array.make dim 0.0 and upper = Array.make dim 5.0 in
  for j = 0 to spec.global_width - 1 do
    lower.(j) <- spec.global_lower.(j);
    (* DispatchWidth in [1,10]; ReorderBufferSize in [50,250] (paper
       Section V-C); other globals default to [lb, 10]. *)
    upper.(j) <- (if spec.global_scale.(j) < 0.05 then 250.0 else 10.0);
    if spec.global_scale.(j) < 0.05 then lower.(j) <- 50.0
  done;
  for i = 0 to Dt_x86.Opcode.count - 1 do
    for j = 0 to spec.per_width - 1 do
      let k = spec.global_width + (i * spec.per_width) + j in
      lower.(k) <- spec.per_lower.(j);
      upper.(k) <- 5.0
    done
  done;
  (lower, upper)

(* ------------------------------------------------------------------ *)
(* Boolean-parameter extension (Section VII): the full llvm-mca table   *)
(* plus one relaxed 0/1 flag per opcode marking it a dependency-        *)
(* breaking zero idiom.  The flag is learned exactly like the ordinal   *)
(* parameters -- relaxed to a float, clamped to [0,1], rounded at       *)
(* extraction -- evaluating the one-hot/rounding scheme the paper       *)
(* proposes for categorical parameters.                                 *)
(* ------------------------------------------------------------------ *)

let idiom_col = mca_per_width

let mca_full_idioms uarch =
  let base = mca_full uarch in
  let width = mca_per_width + 1 in
  let extend arr v =
    let out = Array.make width v in
    Array.blit arr 0 out 0 mca_per_width;
    out
  in
  let idiom_bounds ctx block ~per ~global =
    let flag_of i = Ad.slice ctx per.(i) ~pos:idiom_col ~len:1 in
    mca_bounds_core ~flag_of ctx block ~per ~global
  in
  {
    base with
    name = "llvm-mca/full+idioms";
    per_width = width;
    per_lower = extend base.per_lower 0.0;
    per_upper = extend base.per_upper 1.0;
    per_scale = extend base.per_scale 1.0;
    sample =
      (fun rng ->
        let t = base.sample rng in
        {
          t with
          per =
            Array.map
              (fun row ->
                extend row (if Rng.bernoulli rng 0.3 then 1.0 else 0.0))
              t.per;
        });
    timing =
      (fun t block ->
        let params = mca_params_of_table t in
        let params =
          {
            params with
            Dt_mca.Params.zero_idiom_enabled =
              Array.map (fun (row : float array) -> row.(idiom_col) >= 0.5) t.per;
          }
        in
        Dt_mca.Pipeline.timing_unchecked params block);
    bounds = Some idiom_bounds;
  }
