(** Adaptive (Neyman-style) budget allocation across strata.

    Pure integer arithmetic — no RNG, no floats compared for equality —
    so identical inputs always produce identical allocations regardless
    of domain count or resume point.  Used by {!Engine.collect} (guided
    simulation budget) and the reservoir-fed retrain path (guided
    gradient-step budget); see DESIGN.md §6j. *)

(** [allocate ~budget ~floor_frac ~sizes ~scores] splits [budget] draws
    over strata of population [sizes] with learning-complexity
    [scores].  Guarantees, in priority order:
    - the allocation sums to [budget] exactly;
    - every nonempty stratum gets at least
      [max 1 (floor_frac * budget * size_h / total_size)] draws
      (the floor: no stratum starves, so a mis-estimated pilot can cost
      efficiency but never coverage) — when the budget is too small for
      every floor, nonempty strata get budget/k each, remainder to the
      lowest ids;
    - the remaining budget is distributed proportionally to
      [size_h * (score_h + eps)] by largest-remainder rounding, ties
      to the lower stratum id.
    Empty strata always get 0.  Raises [Invalid_argument] on negative
    budget, mismatched array lengths, or [floor_frac] outside [0,1]. *)
val allocate :
  budget:int -> floor_frac:float -> sizes:int array -> scores:float array ->
  int array

(** [pilot_budget ~budget ~n_strata ~pilot_frac ~min_per_stratum] — the
    uniform pilot draw size: [pilot_frac * budget], at least
    [min_per_stratum * n_strata], capped at [budget / 2] (and at
    [budget]). *)
val pilot_budget :
  budget:int -> n_strata:int -> pilot_frac:float -> min_per_stratum:int -> int

(** [complexity ~first ~last] — scalar learning-complexity score of a
    stratum from its pilot loss curve: the residual loss after the
    pilot plus the still-unrealized improvement rate,
    [max last 0 + max (first - last) 0].  High residual loss or a
    steep still-descending curve both mean the stratum has more to
    teach.  Non-finite inputs are clamped to a large finite penalty so
    a diverged pilot ranks the stratum maximally complex instead of
    poisoning the allocation. *)
val complexity : first:float -> last:float -> float
