(** Textual serialization of parameter tables.

    Learned tables are the artifact DiffTune produces; this module makes
    them durable and diffable.  The format is a line-oriented text file:

    {v
    # difftune parameter table v1
    spec <name>
    global <v0> <v1> ...
    opcode <NAME> <v0> <v1> ... <v_{per_width-1}>
    v}

    Opcode rows are keyed by name, not index, so tables survive additions
    to the opcode database; rows for unknown opcodes are rejected, and
    missing opcodes keep the values of the [fallback] table (the paper
    keeps randomly initialized values for opcodes unseen in training). *)

(** [save spec table path] writes the table atomically (temp file +
    rename), so a crash mid-write never clobbers an existing table. *)
val save : Spec.t -> Spec.table -> string -> unit

(** [to_string spec table] renders the table. *)
val to_string : Spec.t -> Spec.table -> string

(** [load spec ~fallback path] reads a table saved by {!save}.
    Raises [Failure] with a line diagnostic on malformed input,
    mismatched spec name, wrong row widths, non-finite (NaN/Inf)
    values, or duplicate [global]/[opcode] lines. *)
val load : Spec.t -> fallback:Spec.table -> string -> Spec.table

(** [of_string spec ~fallback text] — as {!load}, from memory. *)
val of_string : Spec.t -> fallback:Spec.table -> string -> Spec.table
