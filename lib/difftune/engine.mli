(** The DiffTune algorithm (paper Section III, Figure 1):

    1. {!collect} a simulated dataset by sampling parameter tables from
       the spec's distribution and recording the original simulator's
       outputs (Equation for D̂);
    2. {!train_surrogate} — fit the differentiable surrogate to mimic
       the simulator over (θ, x) pairs (Equation 2);
    3. {!optimize_table} — freeze the surrogate, relax the table to
       floats, and run gradient descent on the table against the true
       measurements (Equation 3);
    4. extract integer parameters (abs + lower bound + round) and plug
       them back into the original simulator ({!Spec.round_table}).

    {!learn} runs the full pipeline.

    {2 Fault tolerance}

    Every phase accepts [?checkpoint_dir].  When given, phase state is
    periodically persisted through {!Checkpoint} (atomic rename +
    CRC-32), and a re-run with the same configuration resumes from the
    last installed checkpoint — skipping completed phases outright and
    re-entering an interrupted phase mid-epoch — with {e bit-identical}
    results to an uninterrupted run.  Checkpoints embed a fingerprint of
    the run configuration; stale or corrupt files are ignored (counted
    in {!Fault.health}) and the phase restarts cleanly.

    The two training loops also carry numeric-health guards: a
    minibatch producing non-finite or exploding losses/gradients is
    rejected, the weights/optimizer roll back to the last good
    in-memory snapshot, and the learning rate is halved — at most a
    bounded number of times before the run fails with
    [Fault.Error (Numeric_divergence _)].  All incidents are counted in
    the {!Fault.health} record returned in {!result}. *)

module Model = Dt_surrogate.Model

(** How {!collect} spends its simulation budget.  [Uniform] draws
    (θ, x) i.i.d. (the paper's scheme).  [Guided] is Turaco-style
    complexity-guided collection (DESIGN.md §6j): stratify the corpus
    with {!Strata.stratify}, estimate per-stratum learning complexity
    from short pilot fits on a uniform pilot prefix, then spend the
    rest of the {e same} budget via {!Sampler.allocate} — complex
    strata get more fresh samples, cheap strata re-draw from small
    table pools that resolve through the simcache.  Either way the
    dataset is bit-identical across [DIFFTUNE_DOMAINS] and resumes.
    The [DIFFTUNE_SAMPLING=uniform|guided] environment variable
    overrides the config at {!collect} time. *)
type sampling = Uniform | Guided of Strata.config

type config = {
  seed : int;
  sim_multiplier : int;      (** simulated dataset size = this x |train| *)
  surrogate_passes : float;  (** epochs over the simulated dataset *)
  surrogate_lr : float;      (** paper: 0.001 (Adam) *)
  table_lr : float;          (** paper: 0.05 (Adam) *)
  table_passes : float;      (** paper: 1 epoch *)
  batch : int;               (** paper: 256 *)
  table_batch : int;
      (** minibatch for the parameter-table phase; smaller than [batch]
          so small corpora still yield enough optimizer updates *)
  embed_dim : int;
  token_hidden : int;
  instr_hidden : int;
  token_layers : int;        (** paper: 4 *)
  instr_layers : int;
  max_train_block_len : int; (** skip longer blocks during training *)
  grad_clip : float;
  use_analytic : bool;
      (** physics-informed surrogate (differentiable analytic bounds +
          learned correction) instead of the pure-LSTM surrogate; see
          {!Spec.t.bounds} and DESIGN.md *)
  head_hidden : int;  (** hidden width of the prediction head (0 = linear) *)
  sampling : sampling;       (** data-collection strategy for {!collect} *)
  simcache_capacity : int;
      (** LRU capacity of the simulation memo cache used during
          {!collect} *)
  log : string -> unit;
}

(** Paper-shaped hyperparameters at CPU scale. *)
val default_config : config

(** Small, fast settings for tests. *)
val fast_config : config

type sim_sample = {
  block_idx : int;
  per : float array array;   (** normalized per-instruction inputs *)
  global : float array;      (** normalized global inputs *)
  target : float;            (** simulator output under the sampled table *)
}

(** The sampling strategy {!collect} will actually use: [config.sampling]
    unless [DIFFTUNE_SAMPLING] overrides it. *)
val effective_sampling : config -> sampling

(** Fingerprint tag of a strategy ([uniform] or [guided:<digest>]);
    part of the dataset checkpoint fingerprint, so switching strategies
    can never silently resume the other strategy's dataset. *)
val sampling_tag : sampling -> string

(** [collect config spec blocks] builds the simulated dataset under
    {!effective_sampling}: per sample, a table from [spec.sample] and a
    block drawn from [blocks] (uniformly, or per the guided
    allocation).  With [?checkpoint_dir] the dataset is persisted after
    collection and restored wholesale on a matching re-run; guided
    collection additionally checkpoints the pilot phase (samples +
    complexity scores), so a run killed mid-pilot — the
    [collect.pilot_crash] fault site — resumes bit-identically.  Raises
    [Fault.Error (No_training_blocks _)] when every block exceeds
    [max_train_block_len]. *)
val collect :
  ?checkpoint_dir:string ->
  ?health:Fault.health ->
  config -> Spec.t -> Dt_x86.Block.t array -> sim_sample array

(** [make_model config spec rng] builds a surrogate sized for the spec. *)
val make_model : config -> Spec.t -> Dt_util.Rng.t -> Model.t

(** [train_surrogate config spec model data blocks] — SGD/Adam over the
    simulated dataset; returns the final average training loss.  Each
    shard trains on length-bucketed minibatches through the batched
    surrogate path ({!Model.train_batch}); work is still split into a
    fixed number of shards reduced in shard order, so results are
    bit-identical whatever [DIFFTUNE_DOMAINS] says.  With
    [?checkpoint_dir] the phase checkpoints periodically and resumes
    mid-epoch; numeric-health incidents are counted in [?health]. *)
val train_surrogate :
  ?checkpoint_dir:string ->
  ?health:Fault.health ->
  config -> Spec.t -> Model.t -> sim_sample array -> Dt_x86.Block.t array ->
  float

(** [optimize_table config spec model ~train] — frozen-surrogate gradient
    descent on the table; returns the extracted (rounded, bounded) raw
    table.  [?init] warm-starts from an existing raw table instead of a
    random draw (iterative refinement).  [?valid] enables
    validation-gated extraction: the integer table is snapshotted
    periodically and the snapshot with the lowest {e true-simulator}
    error on the validation blocks is returned (capped at 256 blocks;
    the validation split is the one the paper reserves for development
    decisions). *)
val optimize_table :
  ?init:Spec.table ->
  ?valid:(Dt_x86.Block.t * float) array ->
  ?checkpoint_dir:string ->
  ?health:Fault.health ->
  config -> Spec.t -> Model.t -> train:(Dt_x86.Block.t * float) array ->
  Spec.table

type result = {
  table : Spec.table;     (** extracted parameters, pluggable into [spec.timing] *)
  model : Model.t;        (** the trained surrogate *)
  surrogate_loss : float; (** final surrogate training loss *)
  health : Fault.health;  (** recoverable incidents survived by the run *)
}

val learn :
  ?valid:(Dt_x86.Block.t * float) array ->
  ?checkpoint_dir:string ->
  config -> Spec.t -> train:(Dt_x86.Block.t * float) array -> result

(** Iterative local refinement (paper Section VII, after Shirobokov et
    al. [16]): alternates re-collecting the simulated dataset in a
    shrinking neighbourhood of the current parameter estimate with
    continued surrogate training and warm-started parameter descent.
    Removes the reliance on a well-chosen global sampling distribution.
    With [?checkpoint_dir], each round checkpoints into its own
    [round<k>] subdirectory, so a killed run resumes inside the round it
    was interrupted in. *)
val learn_iterative :
  ?valid:(Dt_x86.Block.t * float) array ->
  ?checkpoint_dir:string ->
  config -> ?rounds:int -> Spec.t -> train:(Dt_x86.Block.t * float) array ->
  result

(** Static per-block analytic features from a spec's bound builder
    evaluated at a fixed [reference] table (e.g. the defaults) — a
    convenient feature function for {!train_ithemal}. *)
val spec_features :
  Spec.t -> reference:Spec.table -> Dt_x86.Block.t -> float array

(** The Ithemal baseline (paper Table IV): the same network with no
    parameter inputs, trained directly on ground-truth measurements.  For
    compute parity with the physics-informed surrogate it may receive
    static analytic features per block (e.g. {!spec_features}, or the
    IACA bound decomposition); pass [None] for the pure paper
    architecture. *)
val train_ithemal :
  config -> features:(Dt_x86.Block.t -> float array) option ->
  train:(Dt_x86.Block.t * float) list -> Model.t

(** [retrain_ithemal config ~features ~init ~train] — continual
    retraining for the serving lifecycle: fine-tunes a {e clone} of
    [init] (never [init] itself, which may be live in a degradation
    chain) on freshly collected traffic, reusing the same fitting loop
    (and compiled-plan replay) as {!train_ithemal}.  [train] is
    typically the lifecycle's shadow-score reservoir — (block,
    reference-simulator timing) pairs harvested from live requests, the
    Turaco-style reuse of traffic as training data.  The optimization
    budget follows [config] ([surrogate_passes] x [sim_multiplier] x
    usable blocks), so callers shrink [surrogate_passes] for cheap
    incremental refreshes.  Under {!Guided} sampling (or
    [DIFFTUNE_SAMPLING=guided]) the first epoch stays uniform and the
    remaining step budget is reallocated across strata by observed
    loss — the same {!Sampler.allocate} rule as guided collection.
    Raises [Invalid_argument] when every block exceeds
    [max_train_block_len]. *)
val retrain_ithemal :
  config -> features:(Dt_x86.Block.t -> float array) option ->
  init:Model.t -> train:(Dt_x86.Block.t * float) list -> Model.t

(** Prediction with a model produced by {!train_ithemal}; [features] must
    be the same function used at training time. *)
val ithemal_predict :
  features:(Dt_x86.Block.t -> float array) option -> Model.t ->
  Dt_x86.Block.t -> float

(** Batched {!ithemal_predict}: one {!Model.predict_batch_value} call
    over all blocks (each block's prediction is bit-identical to the
    scalar path).  Not thread-safe — uses the model's scratch
    workspace. *)
val ithemal_predict_batch :
  features:(Dt_x86.Block.t -> float array) option -> Model.t ->
  Dt_x86.Block.t array -> float array
