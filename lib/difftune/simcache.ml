(* Content-addressed memo cache for simulator timings.

   A simulated timing is a pure function of (parameter table, canonical
   block), so it can be memoized under a digest of both.  The cache is a
   bounded LRU guarded by one mutex; values are computed OUTSIDE the
   lock (a slow simulation must not serialize unrelated lookups), and
   only successful computations are inserted — exceptions (deadline
   overruns, injected faults) propagate uncached.

   All locking goes through Dt_util.Sync, so DIFFTUNE_RACECHECK=1 gets
   lock-order edges and a guard stamp on the LRU structure.  The
   race.unlocked_write fault site deliberately runs one insert without
   the lock to prove the guard catches it. *)

type node = {
  key : string;
  mutable value : float;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  m : Dt_util.Sync.mutex;
  g : Dt_util.Sync.guard;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Simcache.create: capacity must be >= 1";
  let m = Dt_util.Sync.mutex "simcache.m" in
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    m;
    g = Dt_util.Sync.guard "simcache.lru" m;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Dt_util.Sync.with_lock t.m f

(* ---- intrusive LRU list (callers hold the lock) ---- *)

let unlink_locked t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front_locked t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      Dt_util.Sync.check t.g ~site:"Simcache.find";
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink_locked t n;
          push_front_locked t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Insert/refresh [key]; the caller must hold [t.m] — except for the
   armed race.unlocked_write fault path below, whose entire point is to
   break that contract so the guard stamp can prove it noticed. *)
let add_locked t key value =
  Dt_util.Sync.check t.g ~site:"Simcache.add";
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      (* Raced with another computer of the same key: both computed
         the same pure function, so either value is correct. *)
      n.value <- value;
      unlink_locked t n;
      push_front_locked t n
  | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front_locked t n;
      if Hashtbl.length t.tbl > t.capacity then
        match t.tail with
        | None -> ()
        | Some lru ->
            unlink_locked t lru;
            Hashtbl.remove t.tbl lru.key

let add t key value =
  if Dt_util.Faultsim.fire "race.unlocked_write" then
    (* Seeded lock-discipline violation: mutate the LRU without the
       mutex.  Under DIFFTUNE_RACECHECK=1 the guard check stamps this
       site (or raises immediately if another domain holds the lock);
       the next locked access raises Sync.Race naming both sites.
       With racecheck off this is the silent race it models. *)
    add_locked t key value
  else locked t (fun () -> add_locked t key value)

let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
      let v = compute () in
      add t key v;
      v

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> Hashtbl.length t.tbl)

(* ---- content digests (FNV-1a 64) ---- *)

let fnv64 fold =
  let h = ref 0xcbf29ce484222325L in
  fold (fun (bits : int64) ->
      h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L);
  Printf.sprintf "%016Lx" !h

let digest_string s =
  fnv64 (fun mix -> String.iter (fun c -> mix (Int64.of_int (Char.code c))) s)

let block_key block = digest_string (Dt_x86.Block.to_string block)

let key ~table ~block = table ^ ":" ^ block
