let to_string (spec : Spec.t) (table : Spec.table) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# difftune parameter table v1\n";
  Buffer.add_string buf (Printf.sprintf "spec %s\n" spec.name);
  if spec.global_width > 0 then begin
    Buffer.add_string buf "global";
    Array.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %g" v))
      table.global;
    Buffer.add_char buf '\n'
  end;
  Array.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf "opcode %s" Dt_x86.Opcode.database.(i).name);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %g" v)) row;
      Buffer.add_char buf '\n')
    table.per;
  Buffer.contents buf

(* Write-to-temp + rename: a crash mid-write leaves the previous table
   intact instead of a truncated file. *)
let save spec table path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string spec table));
  Sys.rename tmp path

let of_string (spec : Spec.t) ~fallback text =
  let table = Spec.copy_table fallback in
  let fail line msg = failwith (Printf.sprintf "Table_io line %d: %s" line msg) in
  let parse_floats line fields expected =
    if List.length fields <> expected then
      fail line (Printf.sprintf "expected %d values, got %d" expected
                   (List.length fields));
    Array.of_list
      (List.map
         (fun s ->
           match float_of_string_opt s with
           | Some v when Float.is_finite v -> v
           | Some _ -> fail line (Printf.sprintf "non-finite value %S" s)
           | None -> fail line (Printf.sprintf "bad number %S" s))
         fields)
  in
  let seen_global = ref false in
  let seen_opcodes = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.iteri (fun idx raw ->
         let line = idx + 1 in
         let s = String.trim raw in
         if s = "" || s.[0] = '#' then ()
         else
           match String.split_on_char ' ' s |> List.filter (( <> ) "") with
           | "spec" :: name ->
               let name = String.concat " " name in
               if name <> spec.name then
                 fail line
                   (Printf.sprintf "table is for spec %S, expected %S" name
                      spec.name)
           | "global" :: fields ->
               if !seen_global then fail line "duplicate global line";
               seen_global := true;
               let values = parse_floats line fields spec.global_width in
               Array.blit values 0 table.global 0 spec.global_width
           | "opcode" :: name :: fields -> (
               match Dt_x86.Opcode.by_name name with
               | None -> fail line (Printf.sprintf "unknown opcode %S" name)
               | Some op ->
                   if Hashtbl.mem seen_opcodes op.index then
                     fail line (Printf.sprintf "duplicate opcode %S" name);
                   Hashtbl.add seen_opcodes op.index ();
                   let values = parse_floats line fields spec.per_width in
                   Array.blit values 0 table.per.(op.index) 0 spec.per_width)
           | _ -> fail line (Printf.sprintf "unrecognized line %S" s));
  table

let load spec ~fallback path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string spec ~fallback text)
