(** Corpus stratification for complexity-guided data collection
    (Turaco-style; see DESIGN.md §6j).

    A stratum groups blocks that the surrogate should find similarly
    hard to learn.  Membership is decided by cheap static features
    derived from the block text and the default scheduling model —
    nothing is simulated and nothing is random, so stratification is a
    pure function of (config, corpus) and is bit-identical across
    processes, domain counts and resumes:

    - {b port-pressure class}: the peak per-port reservation of one
      block iteration under the default PortMap — blocks bound on a hot
      port behave very differently from frontend-bound ones;
    - {b dependency-chain depth bucket}: the longest register
      dependency chain within one iteration — chain-bound blocks are
      where latency parameters matter most;
    - {b block-length bucket}: the sequence length the surrogate's
      LSTM has to integrate over;
    - {b rare-opcode presence}: whether the block contains an opcode
      appearing in at most [rare_blocks] corpus blocks — rare opcodes
      get few gradient updates and need deliberate coverage.

    The {!digest} of a config participates in checkpoint fingerprints
    (content-addressed exactly like the {!Simcache} keys), so a changed
    stratification can never silently resume a stale dataset. *)

type config = {
  uarch : Dt_refcpu.Uarch.uarch;
      (** reference machine whose default PortMap defines port pressure *)
  len_edges : int array;
      (** ascending bucket edges for block length: value [v] falls in
          the first bucket whose edge is [>= v], else the last+1 *)
  dep_edges : int array;   (** bucket edges for dependency-chain depth *)
  port_edges : int array;  (** bucket edges for peak port pressure *)
  rare_blocks : int;
      (** an opcode in [<= rare_blocks] corpus blocks is rare *)
}

(** Haswell reference, edges sized for BHive-like corpora. *)
val default : config

(** Content digest of a config (FNV-1a 64, 16 hex chars). *)
val digest : config -> string

(** Static features of one block (before corpus-relative rarity). *)
type features = {
  port_class : int;
  dep_bucket : int;
  len_bucket : int;
  rare : bool;
}

type t = private {
  config : config;
  keys : string array;         (** stratum id -> human-readable key *)
  assign : int array;          (** block index -> stratum id *)
  members : int array array;   (** stratum id -> member block indices,
                                   ascending *)
}

(** [stratify config blocks] — deterministic stratification of a
    corpus.  Strata are the distinct feature tuples present, ordered by
    key; every block belongs to exactly one stratum. *)
val stratify : config -> Dt_x86.Block.t array -> t

val n_strata : t -> int

(** Features of a single block given per-opcode corpus block counts
    (exposed for tests). *)
val block_features :
  config -> opcode_blocks:int array -> Dt_x86.Block.t -> features

val key_of_features : features -> string
