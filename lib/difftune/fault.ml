type phase = Collect | Surrogate | Table

type t =
  | Checkpoint_missing of { path : string }
  | Checkpoint_corrupt of { path : string; reason : string }
  | Checkpoint_version of { path : string; found : int; expected : int }
  | Checkpoint_mismatch of { path : string; expected : string; found : string }
  | Numeric_divergence of {
      phase : phase;
      step : int;
      retries : int;
      detail : string;
    }
  | No_training_blocks of { phase : phase; detail : string }
  (* ---- serving-side taxonomy (Dt_serve) ---- *)
  | Request_malformed of { detail : string }
  | Block_unparsable of { line : int; col : int; detail : string }
  | Deadline_exceeded of { backend : string; cycle_budget : int }
  | Backend_unavailable of { backend : string; reason : string }
  | All_backends_failed of { chain : (string * string) list }
  | Service_overloaded of { capacity : int }
  (* ---- surrogate-lifecycle taxonomy (Dt_serve.Lifecycle) ---- *)
  | Model_rejected of { version : int; reason : string }
  | Retrain_failed of { version : int; detail : string }
  (* ---- concurrency taxonomy (dt_race dynamic layer) ---- *)
  | Lock_cycle of { chain : string list }
  | Race of { structure : string; first : string; second : string }

exception Error of t

let phase_name = function
  | Collect -> "collect"
  | Surrogate -> "surrogate"
  | Table -> "table"

let to_string = function
  | Checkpoint_missing { path } -> Printf.sprintf "no checkpoint at %s" path
  | Checkpoint_corrupt { path; reason } ->
      Printf.sprintf "corrupt checkpoint %s: %s" path reason
  | Checkpoint_version { path; found; expected } ->
      Printf.sprintf "checkpoint %s has format version %d, expected %d" path
        found expected
  | Checkpoint_mismatch { path; expected; found } ->
      Printf.sprintf
        "checkpoint %s belongs to a different run (fingerprint %S, expected %S)"
        path found expected
  | Numeric_divergence { phase; step; retries; detail } ->
      Printf.sprintf
        "numeric divergence in %s phase at step %d (%s) after %d rollback \
         retries"
        (phase_name phase) step detail retries
  | No_training_blocks { phase; detail } ->
      Printf.sprintf "%s phase has no usable training blocks: %s"
        (phase_name phase) detail
  | Request_malformed { detail } -> Printf.sprintf "malformed request: %s" detail
  | Block_unparsable { line; col; detail } ->
      Printf.sprintf "unparsable block at line %d, column %d: %s" line col
        detail
  | Deadline_exceeded { backend; cycle_budget } ->
      Printf.sprintf "backend %s exceeded its %d-cycle budget" backend
        cycle_budget
  | Backend_unavailable { backend; reason } ->
      Printf.sprintf "backend %s unavailable: %s" backend reason
  | All_backends_failed { chain } ->
      Printf.sprintf "all backends failed: %s"
        (String.concat "; "
           (List.map (fun (b, r) -> Printf.sprintf "%s: %s" b r) chain))
  | Service_overloaded { capacity } ->
      Printf.sprintf "admission queue full (capacity %d)" capacity
  | Model_rejected { version; reason } ->
      Printf.sprintf "model v%d rejected before swap: %s" version reason
  | Retrain_failed { version; detail } ->
      Printf.sprintf "background retraining of model v%d failed: %s" version
        detail
  | Lock_cycle { chain } ->
      Printf.sprintf "lock-order cycle (potential deadlock): %s"
        (String.concat " -> " chain)
  | Race { structure; first; second } ->
      Printf.sprintf "unlocked concurrent access to %s (%s vs %s)" structure
        first second

let error t = raise (Error t)

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Dt_difftune.Fault.Error: " ^ to_string t)
    | _ -> None)

type health = {
  mutable nan_batches : int;
  mutable rollbacks : int;
  mutable lr_backoffs : int;
  mutable resumed_steps : int;
  mutable skipped_phases : int;
  mutable bad_checkpoints : int;
}

let create_health () =
  {
    nan_batches = 0;
    rollbacks = 0;
    lr_backoffs = 0;
    resumed_steps = 0;
    skipped_phases = 0;
    bad_checkpoints = 0;
  }

let health_summary h =
  if
    h.nan_batches = 0 && h.rollbacks = 0 && h.lr_backoffs = 0
    && h.resumed_steps = 0 && h.skipped_phases = 0 && h.bad_checkpoints = 0
  then "clean"
  else
    Printf.sprintf
      "nan-batches %d, rollbacks %d, lr-backoffs %d, resumed-steps %d, \
       skipped-phases %d, bad-checkpoints %d"
      h.nan_batches h.rollbacks h.lr_backoffs h.resumed_steps h.skipped_phases
      h.bad_checkpoints
