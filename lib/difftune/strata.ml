(* Deterministic corpus stratification.  Pure function of
   (config, corpus): no RNG, no simulation, and no hashtable iteration
   (stratum order comes from sorting the key strings), so the result is
   bit-identical across processes, domain counts and resumes. *)

type config = {
  uarch : Dt_refcpu.Uarch.uarch;
  len_edges : int array;
  dep_edges : int array;
  port_edges : int array;
  rare_blocks : int;
}

let default =
  {
    uarch = Dt_refcpu.Uarch.Haswell;
    len_edges = [| 3; 6; 12 |];
    dep_edges = [| 1; 3; 6 |];
    port_edges = [| 2; 4; 8 |];
    rare_blocks = 2;
  }

let digest config =
  let b = Buffer.create 64 in
  Buffer.add_string b "strata|";
  Buffer.add_string b (Dt_refcpu.Uarch.uarch_name config.uarch);
  let edges tag a =
    Buffer.add_string b (Printf.sprintf "|%s=" tag);
    Array.iter (fun e -> Buffer.add_string b (Printf.sprintf "%d," e)) a
  in
  edges "len" config.len_edges;
  edges "dep" config.dep_edges;
  edges "port" config.port_edges;
  Buffer.add_string b (Printf.sprintf "|rare=%d" config.rare_blocks);
  Simcache.digest_string (Buffer.contents b)

type features = {
  port_class : int;
  dep_bucket : int;
  len_bucket : int;
  rare : bool;
}

type t = {
  config : config;
  keys : string array;
  assign : int array;
  members : int array array;
}

let n_strata t = Array.length t.keys

(* First bucket whose edge is >= v, else one past the last edge. *)
let bucket edges v =
  let n = Array.length edges in
  let rec go j = if j >= n then n else if v <= edges.(j) then j else go (j + 1) in
  go 0

(* Longest register dependency chain within one block iteration, in
   instructions.  [Block.dependencies] only reports earlier producers,
   so a single forward pass suffices. *)
let dep_depth block =
  let deps = Dt_x86.Block.dependencies block in
  let n = Array.length deps in
  let depth = Array.make n 1 in
  let best = ref 0 in
  for i = 0 to n - 1 do
    List.iter
      (fun (p, _) -> if depth.(p) + 1 > depth.(i) then depth.(i) <- depth.(p) + 1)
      deps.(i);
    if depth.(i) > !best then best := depth.(i)
  done;
  !best

(* Peak per-port reservation of one iteration under the default
   PortMap: the hottest port's total cycle reservation. *)
let port_pressure port_map block =
  let n_ports = Dt_mca.Params.num_ports in
  let load = Array.make n_ports 0 in
  Array.iter
    (fun (instr : Dt_x86.Instruction.t) ->
      let row = port_map.(instr.Dt_x86.Instruction.opcode.Dt_x86.Opcode.index) in
      for q = 0 to n_ports - 1 do
        load.(q) <- load.(q) + row.(q)
      done)
    block.Dt_x86.Block.instrs;
  Array.fold_left (fun acc v -> if v > acc then v else acc) 0 load

let block_features config ~opcode_blocks block =
  let port_map = (Dt_mca.Params.default config.uarch).Dt_mca.Params.port_map in
  {
    port_class = bucket config.port_edges (port_pressure port_map block);
    dep_bucket = bucket config.dep_edges (dep_depth block);
    len_bucket = bucket config.len_edges (Dt_x86.Block.length block);
    rare =
      List.exists
        (fun op -> opcode_blocks.(op) <= config.rare_blocks)
        (Dt_x86.Block.opcodes block);
  }

let key_of_features f =
  Printf.sprintf "p%d.d%d.l%d.%s" f.port_class f.dep_bucket f.len_bucket
    (if f.rare then "rare" else "common")

let stratify config blocks =
  let n = Array.length blocks in
  (* Per-opcode count of corpus blocks containing it (distinct per
     block, via [Block.opcodes]). *)
  let opcode_blocks = Array.make Dt_x86.Opcode.count 0 in
  Array.iter
    (fun b ->
      List.iter
        (fun op -> opcode_blocks.(op) <- opcode_blocks.(op) + 1)
        (Dt_x86.Block.opcodes b))
    blocks;
  let port_map = (Dt_mca.Params.default config.uarch).Dt_mca.Params.port_map in
  let block_key =
    Array.init n (fun i ->
        let block = blocks.(i) in
        key_of_features
          {
            port_class = bucket config.port_edges (port_pressure port_map block);
            dep_bucket = bucket config.dep_edges (dep_depth block);
            len_bucket = bucket config.len_edges (Dt_x86.Block.length block);
            rare =
              List.exists
                (fun op -> opcode_blocks.(op) <= config.rare_blocks)
                (Dt_x86.Block.opcodes block);
          })
  in
  (* Distinct keys in ascending order define the stratum ids. *)
  let sorted = Array.copy block_key in
  Array.sort String.compare sorted;
  let keys =
    Array.of_list
      (Array.to_list sorted
      |> List.fold_left
           (fun acc k ->
             match acc with
             | prev :: _ when String.equal prev k -> acc
             | _ -> k :: acc)
           []
      |> List.rev)
  in
  let id_of = Hashtbl.create (Array.length keys * 2) in
  Array.iteri (fun h k -> Hashtbl.replace id_of k h) keys;
  let assign = Array.map (fun k -> Hashtbl.find id_of k) block_key in
  let counts = Array.make (Array.length keys) 0 in
  Array.iter (fun h -> counts.(h) <- counts.(h) + 1) assign;
  let members = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (Array.length keys) 0 in
  Array.iteri
    (fun i h ->
      members.(h).(fill.(h)) <- i;
      fill.(h) <- fill.(h) + 1)
    assign;
  { config; keys; assign; members }
