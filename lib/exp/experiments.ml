module Uarch = Dt_refcpu.Uarch
module Spec = Dt_difftune.Spec
module Engine = Dt_difftune.Engine
module Metrics = Dt_eval.Metrics
module Stats = Dt_util.Stats
module Rng = Dt_util.Rng
module Tt = Dt_util.Text_table

type runner = Runner.t

let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let tau3 v = Printf.sprintf "%.3f" v

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let intel = [ Uarch.Ivy_bridge; Uarch.Haswell; Uarch.Skylake ]
let _ = intel

(* ------------------------------------------------------------------ *)

let table3 runner =
  header "Table III: dataset summary statistics";
  let hsw = Runner.dataset runner Uarch.Haswell in
  let s = Dt_bhive.Dataset.summarize hsw in
  let t = Tt.create [ "Statistic"; "Paper (BHive)"; "This repro" ] in
  Tt.add_row t [ "# Blocks train"; "230111"; string_of_int s.n_train ];
  Tt.add_row t [ "# Blocks valid"; "28764"; string_of_int s.n_valid ];
  Tt.add_row t [ "# Blocks test"; "28764"; string_of_int s.n_test ];
  Tt.add_separator t;
  Tt.add_row t [ "Block length min"; "1"; string_of_int s.min_len ];
  Tt.add_row t [ "Block length median"; "3"; Printf.sprintf "%.0f" s.median_len ];
  Tt.add_row t [ "Block length mean"; "4.93"; Printf.sprintf "%.2f" s.mean_len ];
  Tt.add_row t [ "Block length max"; "256"; string_of_int s.max_len ];
  Tt.add_separator t;
  List.iter
    (fun (u, paper) ->
      let ds = Runner.dataset runner u in
      let su = Dt_bhive.Dataset.summarize ds in
      Tt.add_row t
        [
          "Median timing " ^ Uarch.uarch_name u;
          paper;
          Printf.sprintf "%.0f" su.median_timing;
        ])
    [ (Uarch.Ivy_bridge, "132"); (Uarch.Haswell, "123");
      (Uarch.Skylake, "120"); (Uarch.Zen2, "114") ];
  Tt.add_separator t;
  Tt.add_row t [ "Unique opcodes train"; "814"; string_of_int s.unique_opcodes_train ];
  Tt.add_row t [ "Unique opcodes total"; "837"; string_of_int s.unique_opcodes_total ];
  Tt.print t

(* ------------------------------------------------------------------ *)

(* Paper Table IV values: (default err, default tau, difftune err,
   difftune tau, ithemal err, iaca err (option), opentuner err). *)
let paper_table4 = function
  | Uarch.Ivy_bridge -> (33.5, 0.788, 25.4, 0.735, 9.4, Some 15.7, 102.0)
  | Uarch.Haswell -> (25.0, 0.783, 23.7, 0.745, 9.2, Some 17.1, 105.4)
  | Uarch.Skylake -> (26.7, 0.776, 23.0, 0.748, 9.3, Some 14.3, 113.0)
  | Uarch.Zen2 -> (34.9, 0.794, 26.1, 0.689, 9.4, None, 131.3)

let table4 runner =
  header "Table IV: error of llvm-mca with default and learned parameters";
  let t =
    Tt.create
      [ "Architecture"; "Predictor"; "Paper error"; "Error"; "Paper tau"; "Tau" ]
  in
  List.iter
    (fun uarch ->
      let name = Uarch.uarch_name uarch in
      let ds = Runner.dataset runner uarch in
      let p_derr, p_dtau, p_terr, p_ttau, p_ierr, p_iaca, p_ot =
        paper_table4 uarch
      in
      (* Default *)
      let dflt = Runner.default_params uarch in
      let err, tau =
        Runner.evaluate ds (fun b -> Dt_mca.Pipeline.timing dflt b)
      in
      Tt.add_row t
        [ name; "Default"; pct (p_derr /. 100.); pct err; tau3 p_dtau; tau3 tau ];
      (* DiffTune (mean +- std over seeds) *)
      let spec = Spec.mca_full uarch in
      let runs = Runner.difftune runner uarch in
      let stats =
        List.map
          (fun (r : Engine.result) ->
            Runner.evaluate ds (fun b -> spec.timing r.table b))
          runs
      in
      let errs = Array.of_list (List.map fst stats) in
      let taus = Array.of_list (List.map snd stats) in
      let show_pm mean std =
        if Array.length errs > 1 then
          Printf.sprintf "%s+-%.1f%%" (pct mean) (100. *. std)
        else pct mean
      in
      Tt.add_row t
        [
          name; "DiffTune";
          Printf.sprintf "%.1f%%+-*" p_terr;
          show_pm (Stats.mean errs) (Stats.stddev errs);
          tau3 p_ttau;
          tau3 (Stats.mean taus);
        ];
      (* Ithemal *)
      let ierr, itau = Runner.evaluate ds (Runner.ithemal runner uarch) in
      Tt.add_row t
        [ name; "Ithemal"; pct (p_ierr /. 100.); pct ierr; "-"; tau3 itau ];
      (* IACA *)
      (match p_iaca with
      | Some p ->
          let ierr, itau =
            Runner.evaluate ds (fun b ->
                Option.get (Dt_iaca.Iaca.predict uarch b))
          in
          Tt.add_row t
            [ name; "IACA"; pct (p /. 100.); pct ierr; "-"; tau3 itau ]
      | None -> Tt.add_row t [ name; "IACA"; "N/A"; "N/A"; "-"; "-" ]);
      (* OpenTuner *)
      let ot = Runner.opentuner runner uarch in
      let oterr, ottau = Runner.evaluate ds (fun b -> spec.timing ot b) in
      Tt.add_row t
        [ name; "OpenTuner"; pct (p_ot /. 100.); pct oterr; "-"; tau3 ottau ];
      Tt.add_separator t)
    Uarch.all_uarchs;
  Tt.print t

(* ------------------------------------------------------------------ *)

let paper_table5 =
  [ ("OpenBLAS", 28.8, 29.0); ("Redis", 41.2, 22.5); ("SQLite", 32.8, 21.6);
    ("GZip", 40.6, 20.6); ("TensorFlow", 33.5, 22.1);
    ("Clang/LLVM", 22.0, 21.0); ("Eigen", 44.3, 23.8); ("Embree", 34.1, 21.3);
    ("FFmpeg", 30.9, 21.2); ("Scalar", 17.2, 18.9); ("Vec", 35.3, 39.6);
    ("Scalar/Vec", 53.6, 37.5); ("Ld", 27.2, 24.4); ("St", 24.7, 8.7);
    ("Ld/St", 27.9, 30.3) ]

let table5 runner =
  header "Table V: Haswell per-application and per-category error";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.mca_full uarch in
  let dflt = Runner.default_params uarch in
  let learned = (List.hd (Runner.difftune runner uarch)).table in
  let derrs = Runner.test_errors ds (fun b -> Dt_mca.Pipeline.timing dflt b) in
  let lerrs = Runner.test_errors ds (fun b -> spec.timing learned b) in
  let groups =
    Array.map
      (fun (l : Dt_bhive.Dataset.labeled) -> l.entry.apps @ [ l.entry.category ])
      ds.test
  in
  let by_group errs = Metrics.group_errors ~groups ~errors:errs in
  let dflt_groups = by_group derrs and learned_groups = by_group lerrs in
  let t =
    Tt.create
      [ "Block type"; "#"; "Paper default"; "Default"; "Paper learned"; "Learned" ]
  in
  List.iter
    (fun (label, p_d, p_l) ->
      match List.find_opt (fun (g, _, _) -> g = label) dflt_groups with
      | None -> Tt.add_row t [ label; "0"; Printf.sprintf "%.1f%%" p_d; "-";
                               Printf.sprintf "%.1f%%" p_l; "-" ]
      | Some (_, n, derr) ->
          let _, _, lerr =
            List.find (fun (g, _, _) -> g = label) learned_groups
          in
          Tt.add_row t
            [
              label; string_of_int n;
              Printf.sprintf "%.1f%%" p_d; pct derr;
              Printf.sprintf "%.1f%%" p_l; pct lerr;
            ])
    paper_table5;
  Tt.print t

(* ------------------------------------------------------------------ *)

let table6 runner =
  header "Table VI: default and learned global parameters (Haswell)";
  let uarch = Uarch.Haswell in
  let dflt = Runner.default_params uarch in
  let learned = (List.hd (Runner.difftune runner uarch)).table in
  let t =
    Tt.create [ "Parameters"; "DispatchWidth"; "ReorderBufferSize" ]
  in
  Tt.add_row t [ "Paper default"; "4"; "192" ];
  Tt.add_row t [ "Paper learned"; "4"; "144" ];
  Tt.add_row t
    [ "Default"; string_of_int dflt.dispatch_width;
      string_of_int dflt.reorder_buffer_size ];
  Tt.add_row t
    [ "Learned"; Printf.sprintf "%.0f" learned.global.(0);
      Printf.sprintf "%.0f" learned.global.(1) ];
  Tt.print t

(* ------------------------------------------------------------------ *)

let fig2 runner =
  header "Figure 2: llvm-mca vs surrogate while varying DispatchWidth";
  let uarch = Uarch.Haswell in
  let spec = Spec.mca_full uarch in
  let run = List.hd (Runner.difftune runner uarch) in
  let block = Dt_x86.Block.parse "shrq $5, 16(%rsp)" in
  let dflt_table = Spec.mca_table_of_params (Runner.default_params uarch) in
  let t = Tt.create [ "DispatchWidth"; "llvm-mca"; "Surrogate" ] in
  for dw = 1 to 10 do
    let table = Spec.copy_table dflt_table in
    table.global.(0) <- float_of_int dw;
    let sim = spec.timing table block in
    let per, global = Spec.normalize_block spec table block in
    let surrogate =
      let ctx = Dt_autodiff.Ad.new_ctx () in
      let per_n =
        Array.map
          (fun v -> Dt_autodiff.Ad.constant ctx (Dt_tensor.Tensor.vector v))
          per
      in
      let global_n =
        if Array.length global = 0 then None
        else Some (Dt_autodiff.Ad.constant ctx (Dt_tensor.Tensor.vector global))
      in
      let params =
        { Dt_surrogate.Model.per_instr = per_n; global = global_n }
      in
      let features =
        match spec.bounds with
        | Some f when (Dt_surrogate.Model.config run.model).feature_width > 0 ->
            Some (f ctx block ~per:per_n ~global:global_n)
        | _ -> None
      in
      Dt_autodiff.Ad.scalar_value
        (Dt_surrogate.Model.predict run.model ctx block ~params:(Some params)
           ~features)
    in
    Tt.add_row t
      [ string_of_int dw; Printf.sprintf "%.2f" sim;
        Printf.sprintf "%.2f" surrogate ]
  done;
  Tt.print t;
  Printf.printf
    "(the simulator is a step function; the surrogate interpolates smoothly)\n"

(* ------------------------------------------------------------------ *)

let fig4 runner =
  header "Figure 4: distributions of default and learned parameter values (Haswell)";
  let uarch = Uarch.Haswell in
  let dflt = Spec.mca_table_of_params (Runner.default_params uarch) in
  let learned = (List.hd (Runner.difftune runner uarch)).table in
  let hist column_values =
    Stats.int_histogram ~max_value:10
      (Array.map (fun v -> int_of_float (Float.round v)) column_values)
  in
  let column table j =
    Array.map (fun (row : float array) -> row.(j)) table.Spec.per
  in
  let multi table js =
    Array.concat (List.map (fun j -> column table j) js)
  in
  let show name js =
    let t = Tt.create
        ([ "Value" ] @ List.init 11 string_of_int) in
    let d = hist (multi dflt js) and l = hist (multi learned js) in
    Tt.add_row t ("Default" :: Array.to_list (Array.map string_of_int d));
    Tt.add_row t ("Learned" :: Array.to_list (Array.map string_of_int l));
    Printf.printf "-- %s --\n" name;
    Tt.print t
  in
  show "NumMicroOps (4a)" [ 0 ];
  show "WriteLatency (4b)" [ 1 ];
  show "ReadAdvanceCycles (4c)" [ 2; 3; 4 ];
  show "PortMap entries (4d)" (List.init 10 (fun q -> 5 + q));
  let wl_learned = column learned 1 in
  let zeros =
    Array.length (Array.of_list (List.filter (fun v -> v < 0.5) (Array.to_list wl_learned)))
  in
  Printf.printf
    "(paper: 251 of 837 learned WriteLatency values are 0 vs 1 in the default;\n\
    \ here: %d of %d learned zeros vs %d default zeros)\n"
    zeros (Array.length wl_learned)
    (Array.length
       (Array.of_list
          (List.filter (fun v -> v < 0.5) (Array.to_list (column dflt 1)))))

(* ------------------------------------------------------------------ *)

let fig5 runner =
  header "Figure 5: sensitivity to DispatchWidth and ReorderBufferSize (Haswell)";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.mca_full uarch in
  let dflt = Spec.mca_table_of_params (Runner.default_params uarch) in
  let learned = (List.hd (Runner.difftune runner uarch)).table in
  let eval table =
    fst (Runner.evaluate ds (fun b -> spec.timing table b))
  in
  let sweep base j values =
    List.map
      (fun v ->
        let t = Spec.copy_table base in
        t.global.(j) <- v;
        (v, eval t))
      values
  in
  let widths = List.init 10 (fun i -> float_of_int (i + 1)) in
  let t = Tt.create [ "DispatchWidth"; "Default table"; "Learned table" ] in
  List.iter2
    (fun (w, d) (_, l) ->
      Tt.add_row t
        [ Printf.sprintf "%.0f" w; pct d; pct l ])
    (sweep dflt 0 widths) (sweep learned 0 widths);
  Tt.print t;
  let robs = [ 10.; 25.; 50.; 70.; 100.; 150.; 200.; 250.; 300.; 400. ] in
  let t = Tt.create [ "ReorderBufferSize"; "Default table"; "Learned table" ] in
  List.iter2
    (fun (w, d) (_, l) ->
      Tt.add_row t [ Printf.sprintf "%.0f" w; pct d; pct l ])
    (sweep dflt 1 robs) (sweep learned 1 robs);
  Tt.print t;
  Printf.printf
    "(paper: sharp sensitivity to DispatchWidth, flat above a knee for\n\
    \ ReorderBufferSize -- the L1-resident assumption makes the ROB rarely bind)\n"

(* ------------------------------------------------------------------ *)

let ablation_wl runner =
  header "Section VI-B: learning WriteLatency only (Haswell)";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let wl_spec = Spec.mca_write_latency uarch in
  let full_spec = Spec.mca_full uarch in
  let wl = Runner.difftune_wl runner uarch in
  let full = List.hd (Runner.difftune runner uarch) in
  let dflt = Runner.default_params uarch in
  let werr, wtau = Runner.evaluate ds (fun b -> wl_spec.timing wl.table b) in
  let ferr, ftau = Runner.evaluate ds (fun b -> full_spec.timing full.table b) in
  let derr, dtau = Runner.evaluate ds (fun b -> Dt_mca.Pipeline.timing dflt b) in
  let t = Tt.create [ "Setting"; "Paper error"; "Error"; "Paper tau"; "Tau" ] in
  Tt.add_row t [ "Default"; "25.0%"; pct derr; "0.783"; tau3 dtau ];
  Tt.add_row t [ "Full parameter set"; "23.7%"; pct ferr; "0.745"; tau3 ftau ];
  Tt.add_row t [ "WriteLatency only"; "16.2%"; pct werr; "0.823"; tau3 wtau ];
  Tt.print t;
  Printf.printf
    "(learning a subset with expert defaults elsewhere beats learning\n\
    \ everything: the full-table optimum found by DiffTune is not global)\n"

(* ------------------------------------------------------------------ *)

let cases runner =
  header "Section VI-C case studies (Haswell, WriteLatency-only table)";
  let uarch = Uarch.Haswell in
  let cfg = Uarch.config uarch in
  let wl_spec = Spec.mca_write_latency uarch in
  let wl = Runner.difftune_wl runner uarch in
  let dflt = Runner.default_params uarch in
  let get n = (Option.get (Dt_x86.Opcode.by_name n)).Dt_x86.Opcode.index in
  let t =
    Tt.create
      [ "Block"; "True"; "Default pred"; "Learned pred"; "Default WL"; "Learned WL" ]
  in
  List.iter
    (fun (label, block_text, opcode) ->
      let block = Dt_x86.Block.parse block_text in
      let truth = Dt_refcpu.Machine.timing cfg block in
      let dpred = Dt_mca.Pipeline.timing dflt block in
      let lpred = wl_spec.timing wl.table block in
      Tt.add_row t
        [
          label;
          Printf.sprintf "%.2f" truth;
          Printf.sprintf "%.2f" dpred;
          Printf.sprintf "%.2f" lpred;
          string_of_int dflt.write_latency.(get opcode);
          Printf.sprintf "%.0f" wl.table.per.(get opcode).(0);
        ])
    [
      ("pushq+testl (PUSH64r)", "pushq %rbx\ntestl %r8d, %r8d", "PUSH64r");
      ("xorl r13,r13 (XOR32rr)", "xorl %r13d, %r13d", "XOR32rr");
      ("addl eax,16(rsp) (ADD32mr)", "addl %eax, 16(%rsp)", "ADD32mr");
    ];
  Tt.print t;
  Printf.printf
    "(paper: PUSH64r true 1.01, default 2.03 -> learned 1.03 with WL 2 -> 0;\n\
    \ XOR32rr true 0.31, default 1.03 -> learned 0.27;\n\
    \ ADD32mr true 5.97: no WriteLatency can model the memory chain, so the\n\
    \ learned value is degenerately high)\n"

(* ------------------------------------------------------------------ *)

let table8 runner =
  header "Table VIII (Appendix A): llvm_sim with default and learned parameters";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.usim_spec uarch in
  let run = Runner.difftune_usim runner uarch in
  let dflt = Dt_usim.Usim.default uarch in
  let derr, dtau = Runner.evaluate ds (fun b -> Dt_usim.Usim.timing dflt b) in
  let lerr, ltau = Runner.evaluate ds (fun b -> spec.timing run.table b) in
  let ierr, itau = Runner.evaluate ds (Runner.ithemal runner uarch) in
  let t =
    Tt.create [ "Predictor"; "Paper error"; "Error"; "Paper tau"; "Tau" ]
  in
  Tt.add_row t [ "Default"; "61.3%"; pct derr; "0.726"; tau3 dtau ];
  Tt.add_row t [ "DiffTune"; "44.1%"; pct lerr; "0.718"; tau3 ltau ];
  Tt.add_row t [ "Ithemal"; "9.2%"; pct ierr; "0.854"; tau3 itau ];
  Tt.print t

(* ------------------------------------------------------------------ *)

let random_tables runner =
  header "Section V-A: llvm-mca error under random parameter tables";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.mca_full uarch in
  let rng = Rng.create 2026 in
  let subset = Array.sub ds.test 0 (min 150 (Array.length ds.test)) in
  let errs =
    Array.init 10 (fun _ ->
        let table = spec.sample rng in
        let predicted =
          Array.map
            (fun (l : Dt_bhive.Dataset.labeled) -> spec.timing table l.entry.block)
            subset
        in
        let actual =
          Array.map (fun (l : Dt_bhive.Dataset.labeled) -> l.timing) subset
        in
        Metrics.mape ~predicted ~actual)
  in
  Printf.printf
    "paper: 171.4%% +- 95.7%% | here: %.1f%% +- %.1f%% (10 random tables)\n"
    (100. *. Stats.mean errs) (100. *. Stats.stddev errs)

(* ------------------------------------------------------------------ *)

let extension_idioms runner =
  header
    "Extension (Section VII): boolean zero-idiom parameters via relaxation";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.mca_full_idioms uarch in
  let train =
    Array.map
      (fun (l : Dt_bhive.Dataset.labeled) -> (l.entry.block, l.timing))
      ds.train
  in
  let cfg = (Runner.scale runner).engine in
  let valid =
    Array.map
      (fun (l : Dt_bhive.Dataset.labeled) -> (l.entry.block, l.timing))
      ds.valid
  in
  let result = Engine.learn ~valid cfg spec ~train in
  let err, tau = Runner.evaluate ds (fun b -> spec.timing result.table b) in
  let dflt = Runner.default_params uarch in
  let derr, dtau =
    Runner.evaluate ds (fun b -> Dt_mca.Pipeline.timing dflt b)
  in
  let t = Tt.create [ "Setting"; "Error"; "Tau" ] in
  Tt.add_row t [ "Default (idioms off)"; pct derr; tau3 dtau ];
  Tt.add_row t [ "Learned table + flags"; pct err; tau3 tau ];
  Tt.print t;
  (* How many learned flags land on truly idiom-capable opcodes? *)
  let hits = ref 0 and on = ref 0 in
  Array.iteri
    (fun i (row : float array) ->
      if row.(Spec.idiom_col) >= 0.5 then begin
        incr on;
        if Dt_x86.Opcode.database.(i).zero_idiom then incr hits
      end)
    result.table.per;
  Printf.printf
    "learned idiom flags ON: %d (of %d opcodes), %d on truly idiom-capable      opcodes (%d capable exist)
"
    !on Dt_x86.Opcode.count !hits
    (Array.fold_left
       (fun acc (o : Dt_x86.Opcode.t) -> if o.zero_idiom then acc + 1 else acc)
       0 Dt_x86.Opcode.database)

(* ------------------------------------------------------------------ *)

let measured_latency runner =
  header
    "Section II-B: llvm-mca instantiated with measured latencies \
     (uops.info-style methodology)";
  let uarch = Uarch.Haswell in
  let cfg = Uarch.config uarch in
  let ds = Runner.dataset runner uarch in
  let dflt = Runner.default_params uarch in
  let t =
    Tt.create [ "WriteLatency source"; "Paper error"; "Error"; "Tau" ]
  in
  let eval params =
    Runner.evaluate ds (fun b -> Dt_mca.Pipeline.timing params b)
  in
  let derr, dtau = eval dflt in
  Tt.add_row t [ "curated defaults"; "25.0%"; pct derr; tau3 dtau ];
  List.iter
    (fun (strategy, paper) ->
      let wl = Dt_measure.Measure.measured_write_latency cfg ~strategy in
      let p = { (Dt_mca.Params.copy dflt) with write_latency = wl } in
      let err, tau = eval p in
      Tt.add_row t
        [
          "measured (" ^ Dt_measure.Measure.strategy_name strategy ^ ")";
          paper; pct err; tau3 tau;
        ])
    [ (Dt_measure.Measure.Min, "103%"); (Dt_measure.Measure.Median, "150%");
      (Dt_measure.Measure.Max, "218%") ];
  Tt.print t;
  Printf.printf
    "(Paper: on real Haswell, min/median/max measured latencies give 103%% /\n\
    \ 150%% / 218%% error -- far worse than the defaults -- because hardware\n\
    \ latencies are input-dependent and multi-valued.  DEVIATION: on our\n\
    \ synthetic reference CPU the measured tables actually beat the defaults;\n\
    \ the machine has no input-dependent pathologies, so end-to-end\n\
    \ microbenchmarks act like a perfect mini-DiffTune.  The paper's weaker\n\
    \ claim does reproduce: min, median and max disagree, so measurement\n\
    \ does not define a unique WriteLatency value.)\n"

(* ------------------------------------------------------------------ *)

let ablation_surrogate runner =
  header
    "Ablation: pure-LSTM (paper architecture) vs physics-informed surrogate";
  let uarch = Uarch.Haswell in
  let ds = Runner.dataset runner uarch in
  let spec = Spec.mca_full uarch in
  let blocks =
    Array.map (fun (l : Dt_bhive.Dataset.labeled) -> l.entry.block) ds.train
  in
  let scale = Runner.scale runner in
  let cfg = { scale.engine with sim_multiplier = min 6 scale.engine.sim_multiplier } in
  let data = Engine.collect cfg spec blocks in
  let n = Array.length data in
  let train_data = Array.sub data 0 (n * 9 / 10) in
  let held = Array.sub data (n * 9 / 10) (n - (n * 9 / 10)) in
  let fidelity model =
    let errs =
      Array.map
        (fun (s : Engine.sim_sample) ->
          let block = blocks.(s.block_idx) in
          let features =
            match spec.bounds with
            | Some f when (Dt_surrogate.Model.config model).feature_width > 0
              ->
                let ctx = Dt_autodiff.Ad.new_ctx () in
                let per =
                  Array.map
                    (fun v ->
                      Dt_autodiff.Ad.constant ctx (Dt_tensor.Tensor.vector v))
                    s.per
                in
                let global =
                  if Array.length s.global = 0 then None
                  else
                    Some
                      (Dt_autodiff.Ad.constant ctx
                         (Dt_tensor.Tensor.vector s.global))
                in
                Some
                  (Dt_tensor.Tensor.to_array
                     (Dt_autodiff.Ad.value (f ctx block ~per ~global)))
            | _ -> None
          in
          let p =
            match features with
            | Some f ->
                Dt_surrogate.Model.predict_value model block
                  ~params:(Some (s.per, s.global)) ~features:f ()
            | None ->
                Dt_surrogate.Model.predict_value model block
                  ~params:(Some (s.per, s.global)) ()
          in
          Float.abs (p -. s.target) /. Float.max s.target 1e-3)
        held
    in
    Stats.mean errs
  in
  let t = Tt.create [ "Surrogate"; "Held-out fidelity (MAPE vs simulator)" ] in
  List.iter
    (fun (name, use_analytic) ->
      let rng = Rng.create 11 in
      let model =
        Engine.make_model { cfg with use_analytic } spec rng
      in
      let _ =
        Engine.train_surrogate { cfg with use_analytic } spec model train_data
          blocks
      in
      Tt.add_row t [ name; pct (fidelity model) ])
    [ ("physics-informed (bounds + LSTM correction)", true);
      ("pure LSTM (paper architecture, same budget)", false) ];
  Tt.print t;
  Printf.printf
    "(at CPU scale the analytic bounds are what make the surrogate faithful\n\
    \ enough for parameter gradients; see DESIGN.md)\n"

let all =
  [
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("fig2", fig2);
    ("fig4", fig4);
    ("fig5", fig5);
    ("ablation_wl", ablation_wl);
    ("cases", cases);
    ("table8", table8);
    ("random_tables", random_tables);
    ("measured_latency", measured_latency);
    ("extension_idioms", extension_idioms);
    ("ablation_surrogate", ablation_surrogate);
  ]
