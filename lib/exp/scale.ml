type t = {
  name : string;
  corpus_size : int;
  noise : float;
  engine : Dt_difftune.Engine.config;
  opentuner_parity : int;
  seeds : int list;
}

let log_progress msg = Dt_util.Log.status "    [%s]" msg

let smoke =
  {
    name = "smoke";
    corpus_size = 220;
    noise = 0.01;
    engine =
      {
        Dt_difftune.Engine.default_config with
        seed = 3;
        sim_multiplier = 3;
        surrogate_passes = 0.5;
        batch = 64;
        table_batch = 16;
        token_hidden = 12;
        instr_hidden = 12;
        token_layers = 1;
        instr_layers = 1;
        max_train_block_len = 10;
        table_passes = 3.0;
        log = log_progress;
      };
    opentuner_parity = 1;
    seeds = [ 3 ];
  }

let quick =
  {
    name = "quick";
    corpus_size = 1400;
    noise = 0.01;
    engine =
      {
        Dt_difftune.Engine.default_config with
        seed = 3;
        sim_multiplier = 8;
        surrogate_passes = 3.0;
        batch = 128;
        table_batch = 48;
        token_hidden = 32;
        instr_hidden = 32;
        token_layers = 2;
        instr_layers = 2;
        max_train_block_len = 14;
        table_passes = 20.0;
        log = log_progress;
      };
    opentuner_parity = 3;
    seeds = [ 3 ];
  }

let full =
  {
    name = "full";
    corpus_size = 2000;
    noise = 0.01;
    engine =
      {
        Dt_difftune.Engine.default_config with
        seed = 3;
        sim_multiplier = 10;
        surrogate_passes = 4.0;
        batch = 128;
        token_hidden = 32;
        instr_hidden = 32;
        token_layers = 2;
        instr_layers = 2;
        max_train_block_len = 16;
        table_passes = 30.0;
        log = log_progress;
      };
    opentuner_parity = 5;
    seeds = [ 3; 4; 5 ];
  }

let from_env () =
  match Sys.getenv_opt "DIFFTUNE_SCALE" with
  | Some "full" -> full
  | Some "smoke" -> smoke
  | Some "quick" | None -> quick
  | Some other ->
      Dt_util.Log.warn "unknown DIFFTUNE_SCALE %S, using quick" other;
      quick
