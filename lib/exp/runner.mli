(** Shared, memoized experiment state: the corpus, per-microarchitecture
    labeled datasets, and trained artifacts (DiffTune runs, Ithemal
    models, OpenTuner searches).  Tables and figures that share a learned
    table (Table IV, Table V, Table VI, Figures 4-5) reuse the same run,
    as in the paper. *)

module Uarch = Dt_refcpu.Uarch
module Spec = Dt_difftune.Spec
module Engine = Dt_difftune.Engine

type t

(** [create ?checkpoint_dir scale] — with [?checkpoint_dir], every
    DiffTune run checkpoints into its own subdirectory
    ([<dir>/<experiment>/<uarch>[/seed<k>]]) and a repeated invocation
    resumes (or skips) interrupted work; see {!Engine.learn}.  All
    progress reporting goes through [scale.engine.log]. *)
val create : ?checkpoint_dir:string -> Scale.t -> t

val scale : t -> Scale.t

val dataset : t -> Uarch.uarch -> Dt_bhive.Dataset.t

(** Default llvm-mca parameters for a microarchitecture. *)
val default_params : Uarch.uarch -> Dt_mca.Params.t

(** DiffTune runs on the full llvm-mca spec, one per configured seed. *)
val difftune : t -> Uarch.uarch -> Engine.result list

(** DiffTune on the WriteLatency-only spec (Section VI-B). *)
val difftune_wl : t -> Uarch.uarch -> Engine.result

(** DiffTune on the llvm_sim spec (Appendix A). *)
val difftune_usim : t -> Uarch.uarch -> Engine.result

(** The Ithemal baseline predictor. *)
val ithemal : t -> Uarch.uarch -> Dt_x86.Block.t -> float

(** The OpenTuner baseline's best table. *)
val opentuner : t -> Uarch.uarch -> Spec.table

(** [evaluate ds f] — (MAPE, Kendall tau) of predictor [f] on the test
    split. *)
val evaluate :
  Dt_bhive.Dataset.t -> (Dt_x86.Block.t -> float) -> float * float

(** Per-sample test absolute percentage errors of a predictor. *)
val test_errors :
  Dt_bhive.Dataset.t -> (Dt_x86.Block.t -> float) -> float array
