module Uarch = Dt_refcpu.Uarch
module Spec = Dt_difftune.Spec
module Engine = Dt_difftune.Engine
module Fault = Dt_difftune.Fault
module Rng = Dt_util.Rng

type t = {
  scale : Scale.t;
  checkpoint_dir : string option;
  mutable corpus : Dt_bhive.Dataset.corpus option;
  datasets : (Uarch.uarch, Dt_bhive.Dataset.t) Hashtbl.t;
  difftune_runs : (Uarch.uarch, Engine.result list) Hashtbl.t;
  wl_runs : (Uarch.uarch, Engine.result) Hashtbl.t;
  usim_runs : (Uarch.uarch, Engine.result) Hashtbl.t;
  ithemal_models : (Uarch.uarch, Dt_x86.Block.t -> float) Hashtbl.t;
  opentuner_tables : (Uarch.uarch, Spec.table) Hashtbl.t;
}

let create ?checkpoint_dir scale =
  {
    scale;
    checkpoint_dir;
    corpus = None;
    datasets = Hashtbl.create 4;
    difftune_runs = Hashtbl.create 4;
    wl_runs = Hashtbl.create 4;
    usim_runs = Hashtbl.create 4;
    ithemal_models = Hashtbl.create 4;
    opentuner_tables = Hashtbl.create 4;
  }

let scale t = t.scale

(* Progress goes through the engine's log hook, not straight to stderr,
   so embedders (and tests) control where it lands — and so messages
   about skipped/resumed phases on a checkpointed re-run are visible
   wherever the engine's own messages go. *)
let log t msg = t.scale.engine.log msg

(* Per-run checkpoint directory: [<dir>/<experiment>/<uarch>[/seed<k>]],
   one leaf per learned artifact so independent runs never share files. *)
let run_dir t parts =
  Option.map (fun d -> List.fold_left Filename.concat d parts) t.checkpoint_dir

let memo tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.replace tbl key v;
      v

let corpus t =
  match t.corpus with
  | Some c -> c
  | None ->
      log t (Printf.sprintf "[corpus: %d blocks]" t.scale.corpus_size);
      let c = Dt_bhive.Dataset.corpus ~seed:42 ~size:t.scale.corpus_size in
      t.corpus <- Some c;
      c

let dataset t uarch =
  memo t.datasets uarch (fun () ->
      log t (Printf.sprintf "[labeling %s]" (Uarch.uarch_name uarch));
      Dt_bhive.Dataset.label (corpus t) ~seed:1 ~uarch ~noise:t.scale.noise)

let default_params = Dt_mca.Params.default

let train_pairs t uarch =
  Array.map
    (fun (l : Dt_bhive.Dataset.labeled) -> (l.entry.block, l.timing))
    (dataset t uarch).train

let valid_pairs t uarch =
  Array.map
    (fun (l : Dt_bhive.Dataset.labeled) -> (l.entry.block, l.timing))
    (dataset t uarch).valid

let report_health t label (r : Engine.result) =
  let summary = Fault.health_summary r.health in
  if summary <> "clean" then
    log t (Printf.sprintf "[%s: health %s]" label summary);
  r

let difftune t uarch =
  memo t.difftune_runs uarch (fun () ->
      let train = train_pairs t uarch in
      let valid = valid_pairs t uarch in
      let spec = Spec.mca_full uarch in
      let uname = Uarch.uarch_name uarch in
      List.map
        (fun seed ->
          log t (Printf.sprintf "[difftune %s seed %d]" uname seed);
          let dir =
            run_dir t [ "difftune"; uname; Printf.sprintf "seed%d" seed ]
          in
          Engine.learn ~valid ?checkpoint_dir:dir { t.scale.engine with seed }
            spec ~train
          |> report_health t (Printf.sprintf "difftune %s seed %d" uname seed))
        t.scale.seeds)

let difftune_wl t uarch =
  memo t.wl_runs uarch (fun () ->
      let uname = Uarch.uarch_name uarch in
      log t (Printf.sprintf "[difftune-wl %s]" uname);
      let train = train_pairs t uarch in
      let valid = valid_pairs t uarch in
      Engine.learn ~valid
        ?checkpoint_dir:(run_dir t [ "difftune-wl"; uname ])
        t.scale.engine
        (Spec.mca_write_latency uarch)
        ~train
      |> report_health t (Printf.sprintf "difftune-wl %s" uname))

let difftune_usim t uarch =
  memo t.usim_runs uarch (fun () ->
      let uname = Uarch.uarch_name uarch in
      log t (Printf.sprintf "[difftune-usim %s]" uname);
      let train = train_pairs t uarch in
      let valid = valid_pairs t uarch in
      Engine.learn ~valid
        ?checkpoint_dir:(run_dir t [ "difftune-usim"; uname ])
        t.scale.engine (Spec.usim_spec uarch) ~train
      |> report_health t (Printf.sprintf "difftune-usim %s" uname))

(* The Ithemal baseline: the same network family trained directly on
   measurements, given the IACA bound decomposition as static analytic
   features (see DESIGN.md: learned-baseline parity at CPU scale). *)
let iaca_features uarch block =
  let b = Dt_iaca.Iaca.bounds uarch block in
  [| b.frontend; b.backend; b.latency |]

let ithemal t uarch =
  memo t.ithemal_models uarch (fun () ->
      log t (Printf.sprintf "[ithemal %s]" (Uarch.uarch_name uarch));
      let train = Array.to_list (train_pairs t uarch) in
      let features = Some (iaca_features uarch) in
      let model = Engine.train_ithemal t.scale.engine ~features ~train in
      Engine.ithemal_predict ~features model)

let opentuner t uarch =
  memo t.opentuner_tables uarch (fun () ->
      log t (Printf.sprintf "[opentuner %s]" (Uarch.uarch_name uarch));
      let train = train_pairs t uarch in
      let spec = Spec.mca_full uarch in
      (* Budget parity (Section V-C): the same number of block evaluations
         as DiffTune's end-to-end pipeline consumed. *)
      let budget =
        t.scale.opentuner_parity * t.scale.engine.sim_multiplier
        * Array.length train
      in
      let cfg =
        {
          Dt_opentuner.Opentuner.default_config with
          seed = 9;
          budget_evaluations = budget;
          eval_blocks = 128;
        }
      in
      let lower, upper = Spec.search_bounds spec in
      (* Fixed evaluation subset: a deterministic objective, as OpenTuner
         evaluates each configuration on the same benchmark set. *)
      let fixed = Array.sub train 0 (min 128 (Array.length train)) in
      let evaluate vec ~n =
        let table = Spec.unflatten spec vec in
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          let b, y = fixed.(i mod Array.length fixed) in
          acc := !acc +. (Float.abs (spec.timing table b -. y) /. y)
        done;
        !acc /. float_of_int n
      in
      let result = Dt_opentuner.Opentuner.optimize cfg ~lower ~upper ~evaluate in
      Spec.unflatten spec result.best)

let evaluate (ds : Dt_bhive.Dataset.t) f =
  let predicted =
    Array.map (fun (l : Dt_bhive.Dataset.labeled) -> f l.entry.block) ds.test
  in
  let actual = Array.map (fun (l : Dt_bhive.Dataset.labeled) -> l.timing) ds.test in
  ( Dt_eval.Metrics.mape ~predicted ~actual,
    Dt_eval.Metrics.kendall_tau predicted actual )

let test_errors (ds : Dt_bhive.Dataset.t) f =
  let predicted =
    Array.map (fun (l : Dt_bhive.Dataset.labeled) -> f l.entry.block) ds.test
  in
  let actual = Array.map (fun (l : Dt_bhive.Dataset.labeled) -> l.timing) ds.test in
  Dt_eval.Metrics.ape ~predicted ~actual
