let check_pair name p a =
  if Array.length p <> Array.length a then
    invalid_arg (name ^ ": length mismatch");
  if Array.length p = 0 then invalid_arg (name ^ ": empty input")

let ape ~predicted ~actual =
  check_pair "Metrics.ape" predicted actual;
  Array.mapi
    (fun i p ->
      if actual.(i) <= 0.0 then invalid_arg "Metrics.ape: nonpositive actual";
      Float.abs (p -. actual.(i)) /. actual.(i))
    predicted

let mape ~predicted ~actual =
  Dt_util.Stats.mean (ape ~predicted ~actual)

(* ---- Kendall's tau-b ---- *)

(* Count inversions in [a] between positions, merge-sort style. *)
let count_inversions a =
  let n = Array.length a in
  let buf = Array.make n 0.0 in
  let rec go lo hi =
    if hi - lo <= 1 then 0L
    else begin
      let mid = (lo + hi) / 2 in
      let inv = Int64.add (go lo mid) (go mid hi) in
      let i = ref lo and j = ref mid and k = ref lo in
      let inv = ref inv in
      while !i < mid && !j < hi do
        if a.(!i) <= a.(!j) then begin
          buf.(!k) <- a.(!i);
          incr i
        end
        else begin
          buf.(!k) <- a.(!j);
          inv := Int64.add !inv (Int64.of_int (mid - !i));
          incr j
        end;
        incr k
      done;
      while !i < mid do
        buf.(!k) <- a.(!i);
        incr i;
        incr k
      done;
      while !j < hi do
        buf.(!k) <- a.(!j);
        incr j;
        incr k
      done;
      Array.blit buf lo a lo (hi - lo);
      !inv
    end
  in
  go 0 n

(* Sum over tie groups of k*(k-1)/2. *)
let tie_term values =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let total = ref 0L in
  let run = ref 1 in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then incr run
    else begin
      total :=
        Int64.add !total (Int64.of_int (!run * (!run - 1) / 2));
      run := 1
    end
  done;
  total := Int64.add !total (Int64.of_int (!run * (!run - 1) / 2));
  !total

(* Joint ties: pairs tied in both x and y. *)
let joint_tie_term xs ys =
  let pairs = Array.init (Array.length xs) (fun i -> (xs.(i), ys.(i))) in
  Array.sort compare pairs;
  let total = ref 0L in
  let run = ref 1 in
  for i = 1 to Array.length pairs - 1 do
    if pairs.(i) = pairs.(i - 1) then incr run
    else begin
      total := Int64.add !total (Int64.of_int (!run * (!run - 1) / 2));
      run := 1
    end
  done;
  total := Int64.add !total (Int64.of_int (!run * (!run - 1) / 2));
  !total

let kendall_tau xs ys =
  check_pair "Metrics.kendall_tau" xs ys;
  let n = Array.length xs in
  if n < 2 then invalid_arg "Metrics.kendall_tau: need at least 2 samples";
  (* Sort by x (breaking ties by y), then count inversions in y: each
     inversion is a discordant pair among x-distinct pairs. *)
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match compare xs.(i) xs.(j) with 0 -> compare ys.(i) ys.(j) | c -> c)
    idx;
  let y_sorted = Array.map (fun i -> ys.(i)) idx in
  let discordant = count_inversions (Array.copy y_sorted) in
  let n_pairs = Int64.of_int (n * (n - 1) / 2) in
  let tx = tie_term xs and ty = tie_term ys in
  let txy = joint_tie_term xs ys in
  (* Pairs tied in x (incl. joint) are neither concordant nor discordant;
     same for y.  Concordant = total - tx - ty + txy - discordant. *)
  let to_f = Int64.to_float in
  let concordant =
    to_f n_pairs -. to_f tx -. to_f ty +. to_f txy -. to_f discordant
  in
  let denom =
    sqrt ((to_f n_pairs -. to_f tx) *. (to_f n_pairs -. to_f ty))
  in
  if Float.equal denom 0.0 then 0.0
  else (concordant -. to_f discordant) /. denom

let kendall_tau_naive xs ys =
  check_pair "Metrics.kendall_tau_naive" xs ys;
  let n = Array.length xs in
  let concordant = ref 0 and discordant = ref 0 in
  let tx = ref 0 and ty = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = compare xs.(i) xs.(j) and dy = compare ys.(i) ys.(j) in
      if dx = 0 && dy = 0 then ()
      else if dx = 0 then incr tx
      else if dy = 0 then incr ty
      else if dx * dy > 0 then incr concordant
      else incr discordant
    done
  done;
  let c = float_of_int !concordant and d = float_of_int !discordant in
  let denom =
    sqrt ((c +. d +. float_of_int !tx) *. (c +. d +. float_of_int !ty))
  in
  if Float.equal denom 0.0 then 0.0 else (c -. d) /. denom

let bootstrap_ci rng ~resamples values =
  if Array.length values = 0 then invalid_arg "Metrics.bootstrap_ci: empty";
  let n = Array.length values in
  let means =
    Array.init resamples (fun _ ->
        let acc = ref 0.0 in
        for _ = 1 to n do
          acc := !acc +. values.(Dt_util.Rng.int rng n)
        done;
        !acc /. float_of_int n)
  in
  Array.sort compare means;
  let mean = Dt_util.Stats.mean values in
  let lo = means.(int_of_float (0.025 *. float_of_int resamples)) in
  let hi = means.(int_of_float (0.975 *. float_of_int resamples)) in
  (mean, (hi -. lo) /. 2.0)

let group_errors ~groups ~errors =
  if Array.length groups <> Array.length errors then
    invalid_arg "Metrics.group_errors: length mismatch";
  let table : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i labels ->
      List.iter
        (fun label ->
          let sum, count =
            match Hashtbl.find_opt table label with
            | Some cell -> cell
            | None ->
                let cell = (ref 0.0, ref 0) in
                Hashtbl.add table label cell;
                cell
          in
          sum := !sum +. errors.(i);
          incr count)
        labels)
    groups;
  Hashtbl.fold
    (fun label (sum, count) acc -> (label, !count, !sum /. float_of_int !count) :: acc)
    table []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
