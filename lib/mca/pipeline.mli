(** The llvm-mca clone: an out-of-order superscalar basic-block simulator
    parameterized by {!Params.t}.

    Faithful to the pipeline described in paper Section II-A:
    - {b dispatch} reserves [NumMicroOps] reorder-buffer slots per
      instruction, moving at most [DispatchWidth] micro-ops per cycle;
    - {b issue} blocks an instruction until its register sources are ready
      (producer issue time + [WriteLatency], accelerated per source slot
      by the consumer's [ReadAdvanceCycles]) and all ports with a nonzero
      [PortMap] entry are free;
    - {b execute} reserves each port [p] for [PortMap[p]] cycles;
    - {b retire} frees micro-ops in program order, [DispatchWidth] per
      cycle.

    Like llvm-mca, the model ignores the processor frontend, assumes all
    data is in L1, and (default alias analysis) tracks {e no} memory
    dependencies — loads never wait for stores, which is precisely the
    model deficiency behind the paper's ADD32mr case study. *)

(** Raised when a [?cycle_budget] watchdog trips: the simulation consumed
    [budget] cycles with only [retired] of [total] dynamic instructions
    retired.  The fields give the serving layer enough structure to label
    a deadline response without string matching. *)
exception Budget_exceeded of { budget : int; retired : int; total : int }

(** [timing params ?iterations ?cycle_budget block] — predicted cycles
    per iteration of the block, simulating [iterations] (default 100)
    back-to-back copies, llvm-mca's definition of a block's timing.

    [?cycle_budget] caps the number of {e simulated} cycles (and hence,
    because every simulated cycle is one loop iteration, the wall-clock
    work): a pathological parameter table — e.g. a learned
    million-cycle port reservation — cannot wedge the caller.  When the
    cap is reached {!Budget_exceeded} is raised in bounded time.  Default
    is unbounded.

    Raises [Invalid_argument] if [params] fails {!Params.validate} or if
    [cycle_budget <= 0]. *)
val timing :
  Params.t -> ?iterations:int -> ?cycle_budget:int -> Dt_x86.Block.t -> float

(** [timing_unchecked] skips parameter validation (hot path for the
    optimizers, which construct tables through validated samplers). *)
val timing_unchecked :
  Params.t -> ?iterations:int -> ?cycle_budget:int -> Dt_x86.Block.t -> float

(** Per-dynamic-instruction pipeline event cycles (all arrays indexed by
    [iteration * block_length + position]; -1 = never happened). *)
type events = {
  dispatch_at : int array;
  issue_at : int array;
  ready_at : int array;   (** execution results available *)
  retire_at : int array;
}

(** [trace params ?iterations block] — simulate a few iterations (default
    4) recording every instruction's dispatch/issue/ready/retire cycles;
    returns the events and the total cycle count.  Drives the timeline
    view of {!Report}. *)
val trace : Params.t -> ?iterations:int -> Dt_x86.Block.t -> events * int

(** Steady-state register dependency structure of a block, as used by the
    issue stage: for each instruction position, the list of
    [(distance back in the dynamic instruction stream, source slot)]
    pairs.  Slot indices follow the ReadAdvanceCycles slot convention
    (0 = data, 1 = address, 2 = flags).  Exposed for the differentiable
    dependency-chain bound of the physics-informed surrogate. *)
val dependency_edges : Dt_x86.Block.t -> (int * int) array array

(** Which block positions are dependency-breaking zero idioms under a
    given per-opcode flag vector (all-false when omitted). *)
val zero_idiom_positions :
  ?idiom_enabled:bool array -> Dt_x86.Block.t -> bool array
