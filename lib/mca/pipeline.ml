open Dt_x86

(* Static, parameter-independent description of one block instruction:
   its opcode index and its register dependencies expressed as
   (producer offset in instructions, consumer source slot).  A producer
   offset is relative to the dynamic instruction stream: [k] means "the
   instruction [k] positions earlier", which captures both intra-iteration
   and loop-carried dependencies uniformly when the block is unrolled. *)
type static_instr = {
  opcode : int;
  deps : (int * int) array; (* (distance back in the stream, source slot) *)
  idiom : bool; (* dependency-breaking zero idiom with the flag enabled *)
}

(* ReadAdvanceCycles source slots are semantic: slot 0 covers register
   data sources, slot 1 address registers of a memory operand, slot 2 the
   flags — mirroring LLVM's per-operand-class ReadAdvance entries
   (e.g. ReadAfterLd accelerates only the data sources of load-op
   forms). *)
let source_slot instr r =
  let addr =
    match Instruction.mem_operand instr with
    | Some m -> Operand.mem_uses m
    | None -> []
  in
  if Reg.equal r Reg.Flags then 2
  else if List.exists (Reg.equal r) addr then 1
  else 0

(* Dependency analysis over two unrolled copies of the block: the second
   copy sees the steady-state producers (including loop-carried ones).
   [idiom_enabled] marks opcodes whose zero-idiom instances break
   dependencies (the learnable boolean extension). *)
let analyze ?idiom_enabled (block : Block.t) =
  let len = Array.length block.instrs in
  let last_writer = Array.make Reg.count (-1) in
  let result = Array.make len { opcode = 0; deps = [||]; idiom = false } in
  let is_idiom (instr : Instruction.t) =
    match idiom_enabled with
    | Some flags ->
        flags.(instr.opcode.index) && Instruction.is_zero_idiom instr
    | None -> false
  in
  for copy = 0 to 1 do
    Array.iteri
      (fun i instr ->
        let pos = (copy * len) + i in
        let idiom = is_idiom instr in
        let reads = if idiom then [] else Instruction.reads instr in
        let deps =
          List.map
            (fun r ->
              let w = last_writer.(Reg.index r) in
              if w >= 0 then Some (pos - w, source_slot instr r) else None)
            reads
          |> List.filter_map Fun.id
        in
        if copy = 1 then
          result.(i) <-
            {
              opcode = instr.Instruction.opcode.index;
              deps = Array.of_list deps;
              idiom;
            };
        List.iter
          (fun r -> last_writer.(Reg.index r) <- pos)
          (Instruction.writes instr))
      block.instrs
  done;
  result

(* Per-dynamic-instruction pipeline event times, for the timeline view. *)
type events = {
  dispatch_at : int array;
  issue_at : int array;
  ready_at : int array;
  retire_at : int array;
}

exception Budget_exceeded of { budget : int; retired : int; total : int }

(* [budget] is the serving-side watchdog: a cap on simulated cycles.  A
   learned table with pathological latencies or port reservations makes
   the simulation arbitrarily slow (each simulated cycle is one loop
   iteration), so a caller that must answer within a deadline bounds the
   walk and receives a structured {!Budget_exceeded} carrying how far
   retirement got.  [max_int] (the default) means unbounded; the check is
   a single integer compare per simulated cycle. *)
let run ?events ?(budget = max_int) (p : Params.t) ~iterations
    (block : Block.t) =
  let len = Array.length block.instrs in
  let static = analyze ~idiom_enabled:p.zero_idiom_enabled block in
  let n = iterations * len in
  (* Per dynamic instruction state. *)
  let issue_time = Array.make n max_int in
  let ready_time = Array.make n max_int in
  let dispatched = Array.make n false in
  let port_busy = Array.make Params.num_ports 0 in
  let rob_free = ref p.reorder_buffer_size in
  let dispatch_head = ref 0 in
  (* Micro-ops of the head instruction still to be dispatched this and
     following cycles. *)
  let head_uops_left = ref 0 in
  let retire_head = ref 0 in
  let oldest_waiting = ref 0 in
  let cycle = ref 0 in
  let uops i = p.num_micro_ops.(static.(i mod len).opcode) in
  while !retire_head < n do
    if !cycle >= budget then
      raise (Budget_exceeded { budget; retired = !retire_head; total = n });
    let now = !cycle in
    (* ---- Retire: in order, executed instructions, DispatchWidth
       micro-ops per cycle (llvm-mca's retire-control-unit default). ---- *)
    let retire_budget = ref p.dispatch_width in
    let blocked = ref false in
    while (not !blocked) && !retire_head < n && !retire_budget > 0 do
      let i = !retire_head in
      let u = min (uops i) p.reorder_buffer_size in
      (* An instruction wider than the whole budget retires alone,
         consuming the full cycle (multi-cycle retirement approximation). *)
      let fits = u <= !retire_budget || !retire_budget = p.dispatch_width in
      if dispatched.(i) && ready_time.(i) <= now && fits then begin
        retire_budget := max 0 (!retire_budget - u);
        rob_free := !rob_free + u;
        (match events with
        | Some e -> e.retire_at.(i) <- now
        | None -> ());
        incr retire_head
      end
      else blocked := true
    done;
    (* ---- Dispatch: DispatchWidth micro-ops per cycle; an instruction
       needs NumMicroOps reorder-buffer slots (clamped so oversized
       instructions cannot deadlock a small buffer). ---- *)
    let dispatch_budget = ref p.dispatch_width in
    let stalled = ref false in
    while (not !stalled) && !dispatch_head < n && !dispatch_budget > 0 do
      let i = !dispatch_head in
      if !head_uops_left = 0 then begin
        let need = min (uops i) p.reorder_buffer_size in
        if need <= !rob_free then begin
          rob_free := !rob_free - need;
          head_uops_left := uops i
        end
        else stalled := true
      end;
      if not !stalled then begin
        let take = min !head_uops_left !dispatch_budget in
        head_uops_left := !head_uops_left - take;
        dispatch_budget := !dispatch_budget - take;
        if !head_uops_left = 0 then begin
          dispatched.(i) <- true;
          (match events with
          | Some e -> e.dispatch_at.(i) <- now
          | None -> ());
          incr dispatch_head
        end
      end
    done;
    (* ---- Issue: scan dispatched-but-unissued instructions oldest first;
       an instruction issues when every source is ready and every port in
       its PortMap is free, reserving those ports. ---- *)
    let first_unissued = ref (-1) in
    for i = !oldest_waiting to !dispatch_head - 1 do
      if issue_time.(i) = max_int && dispatched.(i) then begin
        if !first_unissued < 0 then first_unissued := i;
        let st = static.(i mod len) in
        let deps_ready =
          Array.for_all
            (fun (dist, slot) ->
              let producer = i - dist in
              producer < 0
              || issue_time.(producer) <> max_int
                 &&
                 let wl = p.write_latency.(static.(producer mod len).opcode) in
                 let ra = p.read_advance.(st.opcode).(slot) in
                 issue_time.(producer) + max 0 (wl - ra) <= now)
            st.deps
        in
        if deps_ready then
          if st.idiom then begin
            (* Eliminated at rename: no execution resources, results
               available immediately. *)
            issue_time.(i) <- now;
            ready_time.(i) <- now;
            match events with
            | Some e ->
                e.issue_at.(i) <- now;
                e.ready_at.(i) <- now
            | None -> ()
          end
          else begin
            let pm = p.port_map.(st.opcode) in
            let ports_free = ref true in
            for q = 0 to Params.num_ports - 1 do
              if pm.(q) > 0 && port_busy.(q) > now then ports_free := false
            done;
            if !ports_free then begin
              for q = 0 to Params.num_ports - 1 do
                if pm.(q) > 0 then port_busy.(q) <- now + pm.(q)
              done;
              issue_time.(i) <- now;
              let max_pm = Array.fold_left max 0 pm in
              ready_time.(i) <- now + max p.write_latency.(st.opcode) max_pm;
              match events with
              | Some e ->
                  e.issue_at.(i) <- now;
                  e.ready_at.(i) <- ready_time.(i)
              | None -> ()
            end
          end
      end
    done;
    if !first_unissued >= 0 then oldest_waiting := max !oldest_waiting !first_unissued;
    incr cycle
  done;
  !cycle

let timing_unchecked p ?(iterations = 100) ?cycle_budget block =
  if iterations <= 0 then
    invalid_arg "Mca.Pipeline.timing: iterations must be positive";
  (match cycle_budget with
  | Some b when b <= 0 ->
      invalid_arg "Mca.Pipeline.timing: cycle_budget must be positive"
  | _ -> ());
  float_of_int (run ?budget:cycle_budget p ~iterations block)
  /. float_of_int iterations

let trace p ?(iterations = 4) block =
  Params.validate p;
  if iterations <= 0 then
    invalid_arg "Mca.Pipeline.trace: iterations must be positive";
  let n = iterations * Dt_x86.Block.length block in
  let events =
    {
      dispatch_at = Array.make n (-1);
      issue_at = Array.make n (-1);
      ready_at = Array.make n (-1);
      retire_at = Array.make n (-1);
    }
  in
  let total = run ~events p ~iterations block in
  (events, total)

let timing p ?iterations ?cycle_budget block =
  Params.validate p;
  timing_unchecked p ?iterations ?cycle_budget block

let dependency_edges block = Array.map (fun s -> s.deps) (analyze block)

let zero_idiom_positions ?idiom_enabled block =
  Array.map (fun s -> s.idiom) (analyze ?idiom_enabled block)
