module Clock = Dt_serve.Clock
module Breaker = Dt_serve.Breaker
module Backend = Dt_serve.Backend
module Protocol = Dt_serve.Protocol
module Fault = Dt_difftune.Fault
module Log = Dt_util.Log

type config = {
  vnodes : int;
  replicas : int;
  reply_budget : float;
  probe_interval : float;
  probe_budget : float;
  max_inflight : int;
  max_pending : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  health : Health.config;
}

let default_config =
  {
    vnodes = 64;
    replicas = 2;
    reply_budget = 0.25;
    probe_interval = 0.5;
    probe_budget = 0.25;
    max_inflight = 64;
    max_pending = 4096;
    breaker_threshold = 3;
    breaker_cooldown = 1.0;
    health = Health.default_config;
  }

(* A barrier completes (calls [on_complete total]) when the data
   requests registered on it have all been finally answered. *)
type barrier = {
  mutable remaining : int;
  total : int;
  on_complete : int -> unit;
}

type data = {
  orig_id : string;
  key : string;              (* routing key: the block text *)
  payload : string;          (* verb + payload, resent verbatim on failover *)
  asm : string;
  d_respond : string -> unit;
  mutable assigned : string; (* shard currently serving it *)
  mutable deadline : float;
  mutable tried : (string * string) list; (* reverse (shard, reason) *)
  mutable barriers : barrier list;
}

type collect = {
  c_orig : string;
  c_respond : string -> unit;
  c_deadline : float;
  mutable c_waiting : int;   (* -1 once finished (late replies ignored) *)
  mutable c_pairs : (string * string) list list;
}

type pending =
  | Data of data
  | Probe of string          (* shard name *)
  | Collect of collect

type shard = {
  name : string;
  s_breaker : Breaker.t;
  s_health : Health.t;
  mutable link : (string -> bool) option;
  mutable inflight : int;
  mutable last_probe : float;
  mutable probe_pending : (string * float) option; (* rid, deadline *)
  mutable pong : Protocol.pong option;
  mutable sent : int;
  mutable answered : int;
  mutable timeouts : int;
}

type t = {
  cfg : config;
  clock : Clock.t;
  started : float;
  fallback : Backend.t;
  shards : (string * shard) list; (* sorted by name *)
  mutable ring : Ring.t;
  mutable seq : int;
  pending : (string, pending) Hashtbl.t;
  deadlines : (float * string) Queue.t; (* FIFO = sorted: constant budget *)
  mutable collects : collect list;
  mutable data_live : int;
  mutable is_draining : bool;
  mutable is_stopped : bool;
  (* counters *)
  mutable received : int;
  mutable predicts : int;
  mutable forwarded : int;
  mutable shard_answers : int;
  mutable failovers : int;
  mutable fallback_local : int;
  mutable shed : int;
  mutable late_discarded : int;
  mutable probes_sent : int;
  mutable probe_failures : int;
}

let validate cfg =
  if cfg.replicas < 1 then invalid_arg "Router: replicas must be >= 1";
  if cfg.max_inflight < 1 then invalid_arg "Router: max_inflight must be >= 1";
  if cfg.max_pending < 1 then invalid_arg "Router: max_pending must be >= 1";
  if cfg.reply_budget <= 0.0 || cfg.probe_budget <= 0.0 then
    invalid_arg "Router: budgets must be positive";
  if cfg.probe_interval <= 0.0 then
    invalid_arg "Router: probe_interval must be positive"

let create ?clock cfg ~uarch ~shards =
  validate cfg;
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  if shards = [] then invalid_arg "Router: need at least one shard";
  let names = List.sort_uniq String.compare shards in
  let mk name =
    ( name,
      {
        name;
        s_breaker =
          Breaker.create ~clock ~threshold:cfg.breaker_threshold
            ~cooldown:cfg.breaker_cooldown name;
        s_health = Health.create cfg.health;
        link = None;
        inflight = 0;
        last_probe = Float.neg_infinity;
        probe_pending = None;
        pong = None;
        sent = 0;
        answered = 0;
        timeouts = 0;
      } )
  in
  {
    cfg;
    clock;
    started = clock.Clock.now ();
    fallback = Backend.bound uarch;
    shards = List.map mk names;
    ring = Ring.create ~vnodes:cfg.vnodes names;
    seq = 0;
    pending = Hashtbl.create 256;
    deadlines = Queue.create ();
    collects = [];
    data_live = 0;
    is_draining = false;
    is_stopped = false;
    received = 0;
    predicts = 0;
    forwarded = 0;
    shard_answers = 0;
    failovers = 0;
    fallback_local = 0;
    shed = 0;
    late_discarded = 0;
    probes_sent = 0;
    probe_failures = 0;
  }

let find_shard t name = List.assoc_opt name t.shards

let get_shard t name =
  match find_shard t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Router: unknown shard %S" name)

let fresh_id t prefix =
  t.seq <- t.seq + 1;
  Printf.sprintf "%s%d" prefix t.seq

let rebuild_ring t =
  let members =
    List.filter_map
      (fun (n, s) -> if Health.routable s.s_health then Some n else None)
      t.shards
  in
  t.ring <- Ring.create ~vnodes:t.cfg.vnodes members

let on_health_change t s st =
  Log.status "router: shard %s -> %s" s.name (Health.state_name st);
  rebuild_ring t

let health_success t s =
  match Health.note_success s.s_health with
  | `Changed st -> on_health_change t s st
  | `Unchanged -> ()

let health_failure t s =
  match Health.note_failure s.s_health ~now:(t.clock.Clock.now ()) with
  | `Changed st -> on_health_change t s st
  | `Unchanged -> ()

(* ---- barriers (flush / shutdown / drain) ---- *)

let barrier_hit b =
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then b.on_complete b.total

(* Attach a barrier to every live data request; completes immediately
   when nothing is in flight. *)
let add_barrier t on_complete =
  let b = { remaining = t.data_live; total = t.data_live; on_complete } in
  if b.remaining = 0 then on_complete 0
  else
    Hashtbl.iter
      (fun _ p ->
        match p with
        | Data d ->
            (* FIFO: a flush registered before a shutdown must answer
               first when the same final request completes both *)
            d.barriers <- d.barriers @ [ b ]
        | _ -> ())
      t.pending

(* ---- final resolution of a data request ---- *)

let finish_data t d response_line =
  t.data_live <- t.data_live - 1;
  d.d_respond response_line;
  List.iter barrier_hit d.barriers;
  d.barriers <- []

(* When every ring owner has been tried (or none exists), answer from
   the local analytic bound, labeled with the whole failover ladder. *)
let local_fallback t d =
  t.fallback_local <- t.fallback_local + 1;
  let via =
    match List.rev d.tried with
    | [] -> [ ("cluster", "no_shards") ]
    | tried -> List.map (fun (s, r) -> ("shard_" ^ s, r)) tried
  in
  let resp =
    match Dt_x86.Parser.block_result d.asm with
    | Error e ->
        Protocol.Failed
          (Fault.Block_unparsable { line = e.line; col = e.col; detail = e.msg })
    | Ok [] -> Protocol.Failed (Fault.Request_malformed { detail = "empty block" })
    | Ok instrs ->
        let block = Dt_x86.Block.of_list instrs in
        let cycles =
          t.fallback.Backend.predict ~cycle_budget:max_int block
        in
        Protocol.Answer
          { cycles; backend = t.fallback.Backend.name; via; model = None }
  in
  finish_data t d (Protocol.encode_response ~id:d.orig_id resp)

(* ---- dispatch / failover ---- *)

let tried_shard d name = List.exists (fun (n, _) -> String.equal n name) d.tried

(* Try the ring owners not yet attempted, in replica order; every
   skipped owner is recorded with its reason so the fallback label
   tells the whole story. *)
let rec route_data t d =
  let owners = Ring.owners t.ring d.key ~n:t.cfg.replicas in
  let candidates = List.filter (fun n -> not (tried_shard d n)) owners in
  try_candidates t d candidates

and try_candidates t d = function
  | [] -> local_fallback t d
  | name :: rest -> (
      let s = get_shard t name in
      let skip reason =
        d.tried <- (name, reason) :: d.tried;
        try_candidates t d rest
      in
      match s.link with
      | None -> skip "no_link"
      | Some send ->
          if not (Health.routable s.s_health) then skip "unroutable"
          else if s.inflight >= t.cfg.max_inflight then skip "window_full"
          else if not (Breaker.acquire s.s_breaker) then skip "breaker_open"
          else begin
            let rid = fresh_id t "g" in
            let now = t.clock.Clock.now () in
            d.assigned <- name;
            d.deadline <- now +. t.cfg.reply_budget;
            if send (rid ^ " " ^ d.payload) then begin
              Hashtbl.replace t.pending rid (Data d);
              Queue.push (d.deadline, rid) t.deadlines;
              s.inflight <- s.inflight + 1;
              s.sent <- s.sent + 1;
              t.forwarded <- t.forwarded + 1
            end
            else begin
              (* write failed: the link is dead; drop it so the prober
                 must bring the shard back *)
              s.link <- None;
              Breaker.failure s.s_breaker;
              health_failure t s;
              d.tried <- (name, "send_failed") :: d.tried;
              try_candidates t d rest
            end
          end)

let fail_over t d rid s reason =
  Hashtbl.remove t.pending rid;
  s.inflight <- Int.max 0 (s.inflight - 1);
  t.failovers <- t.failovers + 1;
  d.tried <- (s.name, reason) :: d.tried;
  route_data t d

(* ---- stats (cluster report) ---- *)

let router_pairs t =
  let base =
    [
      ("router.received", string_of_int t.received);
      ("router.predicts", string_of_int t.predicts);
      ("router.forwarded", string_of_int t.forwarded);
      ("router.shard_answers", string_of_int t.shard_answers);
      ("router.failovers", string_of_int t.failovers);
      ("router.fallback_local", string_of_int t.fallback_local);
      ("router.shed", string_of_int t.shed);
      ("router.late_discarded", string_of_int t.late_discarded);
      ("router.probes_sent", string_of_int t.probes_sent);
      ("router.probe_failures", string_of_int t.probe_failures);
      ("router.pending", string_of_int t.data_live);
      ("router.ring_size", string_of_int (List.length (Ring.members t.ring)));
    ]
  in
  let per_shard =
    List.concat_map
      (fun (n, s) ->
        let opened, _, _, rejected = Breaker.counters s.s_breaker in
        [
          (n ^ ".state", Health.state_name (Health.state s.s_health));
          ( n ^ ".model",
            match s.pong with
            | Some { Protocol.model = Some m; _ } -> m
            | _ -> "-" );
          ( n ^ ".queue_depth",
            match s.pong with
            | Some p -> string_of_int p.Protocol.queue_depth
            | None -> "-" );
          (n ^ ".sent", string_of_int s.sent);
          (n ^ ".answered", string_of_int s.answered);
          (n ^ ".timeouts", string_of_int s.timeouts);
          (n ^ ".breaker", Breaker.state_name (Breaker.state s.s_breaker));
          (n ^ ".breaker_opened", string_of_int opened);
          (n ^ ".breaker_rejected", string_of_int rejected);
        ])
      t.shards
  in
  base @ per_shard

let stats_pairs = router_pairs

(* Merge shard stats into the cluster report: numeric values summed
   under [fleet.<key>]; everything non-numeric is shard-local detail
   the per-shard rows already cover. *)
let finish_collect t c =
  if c.c_waiting >= 0 then begin
    c.c_waiting <- -1;
    t.collects <- List.filter (fun c' -> c' != c) t.collects;
    let sums = ref [] in
    List.iter
      (List.iter (fun (k, v) ->
           match float_of_string_opt v with
           | None -> ()
           | Some f ->
               let cur =
                 match List.assoc_opt k !sums with Some x -> x | None -> 0.0
               in
               sums := (k, cur +. f) :: List.remove_assoc k !sums))
      c.c_pairs;
    let fleet =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !sums
      |> List.map (fun (k, v) ->
             ( "fleet." ^ k,
               if Float.is_integer v then Printf.sprintf "%.0f" v
               else Printf.sprintf "%.4f" v ))
    in
    let pairs =
      ("shards_reporting", string_of_int (List.length c.c_pairs))
      :: (router_pairs t @ fleet)
    in
    c.c_respond
      (Protocol.encode_response ~id:c.c_orig (Protocol.Stat_report pairs))
  end

let start_collect t ~id ~respond =
  let linked = List.filter (fun (_, s) -> s.link <> None) t.shards in
  let c =
    {
      c_orig = id;
      c_respond = respond;
      c_deadline = t.clock.Clock.now () +. t.cfg.reply_budget;
      c_waiting = List.length linked;
      c_pairs = [];
    }
  in
  if c.c_waiting = 0 then begin
    c.c_waiting <- 0;
    t.collects <- c :: t.collects;
    finish_collect t c
  end
  else begin
    t.collects <- c :: t.collects;
    List.iter
      (fun (_, s) ->
        match s.link with
        | None -> ()
        | Some send ->
            let rid = fresh_id t "st" in
            if send (rid ^ " stats") then
              Hashtbl.replace t.pending rid (Collect c)
            else begin
              s.link <- None;
              c.c_waiting <- c.c_waiting - 1
            end)
      linked;
    if c.c_waiting <= 0 then finish_collect t c
  end

(* ---- probes ---- *)

let probe_shard t s =
  let now = t.clock.Clock.now () in
  match s.link with
  | None ->
      (* a due probe with no transport is a failed probe *)
      s.last_probe <- now;
      t.probe_failures <- t.probe_failures + 1;
      health_failure t s
  | Some send ->
      let rid = fresh_id t "pb" in
      s.last_probe <- now;
      if send (rid ^ " ping") then begin
        Hashtbl.replace t.pending rid (Probe s.name);
        s.probe_pending <- Some (rid, now +. t.cfg.probe_budget);
        t.probes_sent <- t.probes_sent + 1
      end
      else begin
        s.link <- None;
        t.probe_failures <- t.probe_failures + 1;
        health_failure t s
      end

(* ---- public entry points ---- *)

let ping_payload t =
  {
    Protocol.version = Protocol.proto_version;
    uptime = t.clock.Clock.now () -. t.started;
    model = None;
    queue_depth = t.data_live;
  }

let shed t ~id ~respond =
  t.shed <- t.shed + 1;
  respond
    (Protocol.encode_response ~id
       (Protocol.Overloaded { capacity = t.cfg.max_pending }))

let submit t ~line ~respond =
  t.received <- t.received + 1;
  match Protocol.decode line with
  | Error (id, fault) ->
      respond (Protocol.encode_response ~id (Protocol.Failed fault))
  | Ok (id, Protocol.Ping) ->
      respond (Protocol.encode_response ~id (Protocol.Pong (ping_payload t)))
  | Ok (id, Protocol.Stats) -> start_collect t ~id ~respond
  | Ok (id, Protocol.Flush) ->
      add_barrier t (fun total ->
          respond (Protocol.encode_response ~id (Protocol.Flushed total)))
  | Ok (id, Protocol.Shutdown) ->
      t.is_draining <- true;
      add_barrier t (fun _ ->
          respond (Protocol.encode_response ~id Protocol.Bye);
          t.is_stopped <- true)
  | Ok (id, Protocol.Predict asm) ->
      if t.is_draining || t.data_live >= t.cfg.max_pending then
        shed t ~id ~respond
      else begin
        t.predicts <- t.predicts + 1;
        t.data_live <- t.data_live + 1;
        let d =
          {
            orig_id = id;
            key = asm;
            payload = "predict " ^ asm;
            asm;
            d_respond = respond;
            assigned = "";
            deadline = 0.0;
            tried = [];
            barriers = [];
          }
        in
        route_data t d
      end

(* Substitute the client's id for the router-generated one: the rid is
   the line's first token at offset 0. *)
let rewrite_id line ~rid ~orig =
  orig ^ String.sub line (String.length rid) (String.length line - String.length rid)

(* The status keyword is the response line's second whitespace token. *)
let status_token line =
  let n = String.length line in
  let is_sp c = c = ' ' || c = '\t' in
  let rec skip i = if i < n && is_sp line.[i] then skip (i + 1) else i in
  let rec span i = if i < n && not (is_sp line.[i]) then span (i + 1) else i in
  let i0 = skip 0 in
  let i1 = span i0 in
  let j0 = skip i1 in
  let j1 = span j0 in
  String.sub line j0 (j1 - j0)

let on_shard_line t ~shard ~line =
  let rid = Protocol.response_id line in
  match Hashtbl.find_opt t.pending rid with
  | None -> t.late_discarded <- t.late_discarded + 1
  | Some (Probe name) ->
      Hashtbl.remove t.pending rid;
      let s = get_shard t name in
      s.probe_pending <- None;
      (match Protocol.pong_of_line line with
      | Some pong ->
          s.pong <- Some pong;
          health_success t s
      | None ->
          t.probe_failures <- t.probe_failures + 1;
          health_failure t s)
  | Some (Collect c) ->
      Hashtbl.remove t.pending rid;
      if c.c_waiting >= 0 then begin
        c.c_pairs <- Protocol.fields line :: c.c_pairs;
        c.c_waiting <- c.c_waiting - 1;
        if c.c_waiting = 0 then finish_collect t c
      end
  | Some (Data d) -> (
      let s =
        match find_shard t shard with
        | Some s -> s
        | None -> get_shard t d.assigned
      in
      match status_token line with
      | "overloaded" ->
          (* the shard shed: back-pressure counts against its breaker,
             and the request moves down the ladder *)
          Breaker.failure s.s_breaker;
          health_success t s; (* it answered; the shard is alive *)
          fail_over t d rid s "overloaded"
      | _ ->
          (* ok / degraded / error: a definitive answer — forward it.
             Errors are deterministic (same block, same parse), so a
             replica would only repeat them. *)
          Hashtbl.remove t.pending rid;
          s.inflight <- Int.max 0 (s.inflight - 1);
          s.answered <- s.answered + 1;
          t.shard_answers <- t.shard_answers + 1;
          Breaker.success s.s_breaker;
          health_success t s;
          finish_data t d (rewrite_id line ~rid ~orig:d.orig_id))

let tick t =
  let now = t.clock.Clock.now () in
  (* reply deadlines: the FIFO is sorted (constant budget, monotonic
     sends); stale rids — answered or already failed over — are skipped *)
  let rec drain_deadlines () =
    match Queue.peek_opt t.deadlines with
    | Some (dl, rid) when dl <= now -> (
        ignore (Queue.pop t.deadlines);
        match Hashtbl.find_opt t.pending rid with
        | Some (Data d) when d.deadline <= now ->
            let s = get_shard t d.assigned in
            s.timeouts <- s.timeouts + 1;
            Breaker.failure s.s_breaker;
            health_failure t s;
            fail_over t d rid s "timeout";
            drain_deadlines ()
        | _ -> drain_deadlines ())
    | _ -> ()
  in
  drain_deadlines ();
  (* probes and ejection timers *)
  List.iter
    (fun (_, s) ->
      (match s.probe_pending with
      | Some (rid, dl) when dl <= now ->
          Hashtbl.remove t.pending rid;
          s.probe_pending <- None;
          t.probe_failures <- t.probe_failures + 1;
          health_failure t s
      | _ -> ());
      (match Health.tick s.s_health ~now with
      | `Changed st -> on_health_change t s st
      | `Unchanged -> ());
      if
        s.probe_pending = None
        && Health.probeable s.s_health
        && now -. s.last_probe >= t.cfg.probe_interval
      then probe_shard t s)
    t.shards;
  (* stats collections that ran out of budget answer with what arrived *)
  List.iter
    (fun c -> if c.c_waiting > 0 && c.c_deadline <= now then finish_collect t c)
    t.collects

let pending_data t = t.data_live

let request_drain t =
  if not t.is_draining then begin
    t.is_draining <- true;
    add_barrier t (fun _ -> t.is_stopped <- true)
  end

let draining t = t.is_draining
let stopped t = t.is_stopped

let set_link t name link =
  let s = get_shard t name in
  let had = s.link <> None in
  s.link <- link;
  if had && link = None then begin
    Breaker.failure s.s_breaker;
    health_failure t s;
    (* a dropped link strands everything in flight on this shard: fail
       it over now rather than letting each request wait out its full
       reply budget (a crashed shard would otherwise put the whole
       window at p99 = reply_budget) *)
    (match s.probe_pending with
    | Some (prid, _) ->
        Hashtbl.remove t.pending prid;
        s.probe_pending <- None
    | None -> ());
    let stranded =
      Hashtbl.fold
        (fun rid p acc ->
          match p with
          | Data d when String.equal d.assigned name -> (rid, d) :: acc
          | _ -> acc)
        t.pending []
    in
    List.iter (fun (rid, d) -> fail_over t d rid s "link_lost") stranded
  end

let shard_names t = List.map fst t.shards
let ring_members t = Ring.members t.ring
let breaker t name = Option.map (fun s -> s.s_breaker) (find_shard t name)
let health_state t name =
  Option.map (fun s -> Health.state s.s_health) (find_shard t name)
