module Server = Dt_serve.Server

(* ---- connection plumbing (same discipline as Dt_serve.Server) ---- *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable alive : bool;
}

let client_write c line =
  if c.alive then begin
    let payload = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length payload in
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write c.fd payload !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      c.alive <- false
  end

let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_substring buf data (last + 1) (String.length data - last - 1);
      String.split_on_char '\n' (String.sub data 0 last)

(* One outbound shard connection, re-established on a retry cadence. *)
type conn = {
  c_name : string;
  path : string;
  rbuf : Buffer.t;
  mutable sfd : Unix.file_descr option;
  mutable next_attempt : float;
}

let conn_close conn ~delay ~now =
  (match conn.sfd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  conn.sfd <- None;
  Buffer.clear conn.rbuf;
  conn.next_attempt <- now +. delay

let conn_send conn ~delay line =
  match conn.sfd with
  | None -> false
  | Some fd -> (
      let payload = Bytes.of_string (line ^ "\n") in
      let len = Bytes.length payload in
      let off = ref 0 in
      try
        while !off < len do
          off := !off + Unix.write fd payload !off (len - !off)
        done;
        true
      with Unix.Unix_error _ ->
        conn_close conn ~delay ~now:(Unix.gettimeofday ());
        false)

let try_connect router conn ~delay ~now =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX conn.path) with
  | () ->
      conn.sfd <- Some fd;
      Buffer.clear conn.rbuf;
      Router.set_link router conn.c_name (Some (conn_send conn ~delay))
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      conn.next_attempt <- now +. delay

let run router ~listen ~shards ?(reconnect_delay = 0.2) ?on_tick () =
  Server.with_drain_signals @@ fun () ->
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  if Sys.file_exists listen then Sys.remove listen;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients = ref [] in
  let conns =
    List.map
      (fun (name, path) ->
        { c_name = name; path; rbuf = Buffer.create 1024; sfd = None;
          next_attempt = 0.0 })
      shards
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !clients;
      List.iter
        (fun conn ->
          match conn.sfd with
          | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ())
        conns;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Sys.remove listen with Sys_error _ -> ());
      match prev_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX listen);
      Unix.listen srv 64;
      let read_client c =
        let chunk = Bytes.create 8192 in
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> c.alive <- false
        | n ->
            Buffer.add_subbytes c.buf chunk 0 n;
            List.iter
              (fun line ->
                if String.trim line <> "" then
                  Router.submit router ~line ~respond:(client_write c))
              (take_lines c.buf)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            c.alive <- false
      in
      let read_conn conn fd ~now =
        let chunk = Bytes.create 8192 in
        let drop () =
          conn_close conn ~delay:reconnect_delay ~now;
          Router.set_link router conn.c_name None
        in
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> drop ()
        | n ->
            Buffer.add_subbytes conn.rbuf chunk 0 n;
            List.iter
              (fun line ->
                if String.trim line <> "" then
                  Router.on_shard_line router ~shard:conn.c_name ~line)
              (take_lines conn.rbuf)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            drop ()
      in
      while not (Router.stopped router) do
        let now = Unix.gettimeofday () in
        if Server.drain_pending () then Router.request_drain router;
        (* (re)dial disconnected shards on their retry cadence *)
        List.iter
          (fun conn ->
            if conn.sfd = None && conn.next_attempt <= now then
              try_connect router conn ~delay:reconnect_delay ~now)
          conns;
        let shard_fds =
          List.filter_map (fun conn -> conn.sfd) conns
        in
        let fds = (srv :: List.map (fun c -> c.fd) !clients) @ shard_fds in
        let ready =
          match Unix.select fds [] [] 0.02 with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd == srv then begin
              match Unix.accept srv with
              | conn, _ ->
                  clients :=
                    { fd = conn; buf = Buffer.create 512; alive = true }
                    :: !clients
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd == fd) !clients with
              | Some c -> read_client c
              | None -> (
                  match
                    List.find_opt
                      (fun conn ->
                        match conn.sfd with
                        | Some sfd -> sfd == fd
                        | None -> false)
                      conns
                  with
                  | Some conn -> read_conn conn fd ~now
                  | None -> ()))
          ready;
        Router.tick router;
        (match on_tick with Some f -> f now | None -> ());
        List.iter
          (fun c ->
            if not c.alive then
              try Unix.close c.fd with Unix.Unix_error _ -> ())
          !clients;
        clients := List.filter (fun c -> c.alive) !clients
      done)
