(** The sharded-serving router: transport-agnostic core.

    One router fronts N serve daemons ("shards").  Every [predict]
    request is consistent-hashed by its block text onto a {!Ring} of
    the currently-routable shards and forwarded to the primary owner;
    if that shard times out, sheds, or has no usable link, the request
    {e fails over} along the ring's replica order — and when every
    owner is exhausted it falls through to the local analytic-bound
    backend, answered as [degraded ... via=shard_<name>:<reason>,...]
    so the caller can see the whole ladder.  A reply that arrives after
    its request failed over is discarded (exactly-once toward the
    client).

    The core is deliberately single-threaded and free of I/O: shard
    links are injected as [string -> bool] send closures
    ({!set_link}), replies are pushed in ({!on_shard_line}), and all
    time-based machinery — reply deadlines, health probes, breaker
    cooldowns, ejection hysteresis — advances in {!tick} on the
    injected {!Dt_serve.Clock.t}.  Tests drive the whole failover
    ladder with {!Dt_serve.Clock.manual} and in-memory links; the
    select transport in {!Loop} supplies real sockets.

    Per-shard machinery: a {!Dt_serve.Breaker.t} (opens after
    consecutive data-path failures, half-opens after cooldown), a
    {!Health.t} state machine driven by probe and data outcomes
    (routable shards form the ring; ejected shards rejoin through
    probation), a bounded in-flight window, and the last [ping] payload
    (protocol version, serving model version, queue depth) from the
    health prober. *)

type config = {
  vnodes : int;          (** ring points per shard *)
  replicas : int;        (** owners tried per key (primary + failovers) *)
  reply_budget : float;  (** seconds before an unanswered send fails over *)
  probe_interval : float;(** seconds between health probes per shard *)
  probe_budget : float;  (** seconds before an unanswered probe fails *)
  max_inflight : int;    (** per-shard in-flight window *)
  max_pending : int;     (** global admission bound; beyond it, shed *)
  breaker_threshold : int;
  breaker_cooldown : float;
  health : Health.config;
}

val default_config : config

type t

(** [create ?clock cfg ~uarch ~shards] — [shards] are the member names
    (sockets and links come later via {!set_link}).  All shards start
    [Up] and in the ring.  The local fallback backend is
    [Dt_serve.Backend.bound uarch]. *)
val create :
  ?clock:Dt_serve.Clock.t ->
  config -> uarch:Dt_refcpu.Uarch.uarch -> shards:string list -> t

(** [set_link t name send] — attach ([Some send]) or detach ([None])
    the transport for shard [name].  [send line] must deliver one
    protocol line and report success; [false] (or detaching) makes the
    shard unavailable to the ladder.  Detaching counts one health and
    breaker failure (a lost connection {e is} a failure) and
    immediately fails over every request in flight on that shard —
    nothing waits out its reply budget against a dead link.  Unknown
    names raise [Invalid_argument]. *)
val set_link : t -> string -> (string -> bool) option -> unit

(** [submit t ~line ~respond] — admit one client line.  [respond]
    receives exactly one response line, now or during a later
    {!tick}/{!on_shard_line}.  Control verbs: [ping] answers with the
    router's own payload; [stats] fans out to every linked shard and
    answers one merged cluster report (numeric shard counters summed
    under [fleet.*], router counters under [router.*], per-shard state
    inline); [flush] is a barrier over the data requests in flight at
    submission; [shutdown] starts a drain — new predictions shed while
    it completes, then [ok shutdown] is sent and {!stopped} holds. *)
val submit : t -> line:string -> respond:(string -> unit) -> unit

(** [on_shard_line t ~shard ~line] — a response line read from
    [shard]'s connection.  Resolves the matching pending request or
    probe; unmatched ids (late replies after failover) are counted and
    discarded. *)
val on_shard_line : t -> shard:string -> line:string -> unit

(** Advance deadlines, probes, breaker cooldowns and ejection timers to
    the clock's current now.  Call once per event-loop iteration. *)
val tick : t -> unit

(** Data requests currently in flight (router-side). *)
val pending_data : t -> int

(** Begin a signal-initiated drain: stop admitting predictions, finish
    the ones in flight, then {!stopped}.  Idempotent. *)
val request_drain : t -> unit

val draining : t -> bool

(** The loop should exit: a shutdown/drain completed. *)
val stopped : t -> bool

(** Router-side counters and per-shard status, as [stats] pairs. *)
val stats_pairs : t -> (string * string) list

(** The router's own [ping] payload. *)
val ping_payload : t -> Dt_serve.Protocol.pong

(** Introspection for tests. *)

val shard_names : t -> string list
val ring_members : t -> string list
val breaker : t -> string -> Dt_serve.Breaker.t option
val health_state : t -> string -> Health.state option
