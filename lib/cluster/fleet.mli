(** Declarative fleet supervision: launch N serve daemons plus the
    router from one JSON spec, restart crashed shards with capped
    backoff, and print an aggregated cluster report on exit.

    The spec is a single JSON object (all keys except [shards] and
    [socket_dir] optional — see {!Spec.example}):

    {v
    {
      "shards": 3,
      "socket_dir": "/tmp/difftune_fleet",
      "router_socket": "/tmp/difftune_fleet/router.sock",
      "replicas": 2,
      "vnodes": 64,
      "reply_budget_s": 0.25,
      "probe_interval_s": 0.5,
      "probe_budget_s": 0.25,
      "max_inflight": 64,
      "max_pending": 4096,
      "breaker": { "threshold": 3, "cooldown_s": 1.0 },
      "health": { "eject_after": 3, "rejoin_after": 2,
                  "cooldown_s": 1.0, "cooldown_cap_s": 30.0 },
      "uarch": "haswell",
      "serve": { "queue": 256, "batch": 16 },
      "restart": { "max": 5, "backoff_s": 0.2, "cap_s": 2.0,
                   "grace_s": 2.0 },
      "shard_faults": { "0": "cluster.shard_crash@40" }
    }
    v}

    [serve] holds extra flags passed to every [difftune serve] daemon
    verbatim ([{"queue": 256}] becomes [--queue 256]; a [true] value is
    a bare flag).  [shard_faults] maps shard indices to
    [DIFFTUNE_FAULTS] specs armed {e only} in that daemon's
    environment — the supervisor's own environment never leaks fault
    arming into shards. *)

module Spec : sig
  type t = {
    shards : int;
    socket_dir : string;
    router_socket : string;
    uarch : Dt_refcpu.Uarch.uarch;
    router : Router.config;
    serve_flags : string list;
    shard_faults : (int * string) list;
    restart_max : int;      (** restarts per shard before giving up *)
    restart_backoff : float;(** first restart delay, seconds *)
    restart_cap : float;    (** restart-delay ceiling, seconds *)
    grace : float;          (** SIGTERM -> SIGKILL grace on shutdown *)
  }

  (** Raises [Invalid_argument] on a malformed spec. *)
  val of_json : Dt_util.Json.t -> t

  (** Parse [path]; [Dt_util.Json.Parse_error] / [Sys_error] on bad
      input. *)
  val load : string -> t

  (** A copy-paste spec (the one above). *)
  val example : string

  val shard_name : int -> string
  val shard_socket : t -> int -> string
end

(** [launch spec ~cli] — spawn the shards ([cli serve --socket ...]),
    run the router loop in this process until a [shutdown] request or
    drain signal, supervising the children the whole time (a crashed
    shard restarts after capped exponential backoff, at most
    [restart_max] times), then SIGTERM the fleet, escalate to SIGKILL
    after [grace], and print the final cluster report to stdout. *)
val launch : Spec.t -> cli:string -> unit
