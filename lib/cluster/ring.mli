(** Consistent-hash ring with virtual nodes.

    Each member is hashed onto the ring at [vnodes] points; a key is
    served by the first member clockwise from the key's hash.  Adding
    or removing one member therefore remaps only the keys that fell in
    the arcs it owned — about [1/N] of the keyspace — while every other
    key keeps its owner, which is what lets the router eject and rejoin
    shards without reshuffling the fleet's cache locality.

    Hashing is FNV-1a (64-bit, finalized), so ring layout is a pure
    function of the member names: two routers built over the same
    member set agree on every key's owner. *)

type t

(** [create ?vnodes members] — duplicates in [members] are ignored;
    [vnodes] defaults to 64 points per member. *)
val create : ?vnodes:int -> string list -> t

(** Members in sorted order. *)
val members : t -> string list

val is_empty : t -> bool

(** [owners t key ~n] — the first [n] {e distinct} members clockwise
    from [key]'s ring position: the primary, then the failover
    replicas, in deterministic order.  Shorter than [n] when the ring
    has fewer members; [[]] on an empty ring. *)
val owners : t -> string -> n:int -> string list

(** 63-bit FNV-1a with a finalizing mix; exposed for tests. *)
val hash : string -> int
