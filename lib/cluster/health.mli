(** Per-shard health state machine with hysteresis.

    Driven by the router's probe results and data-path outcomes on an
    injected clock (no wall time inside), so the whole ladder is
    unit-testable with {!Dt_serve.Clock.manual}:

    {v
      Up ──failure──▶ Suspect ──[eject_after consecutive]──▶ Ejected
       ▲                 │success                               │
       └─────────────────┘                                      │cooldown
       ▲                                                        ▼
       └──[rejoin_after consecutive successes]── Probation ◀────┘
                                                     │failure
                                                     ▼
                                             Ejected (cooldown doubles)
    v}

    [Up] and [Suspect] are {e routable} (in the ring, receive data
    traffic); [Probation] receives probes only; [Ejected] receives
    nothing until its cooldown elapses.  The cooldown doubles on every
    ejection (capped), so a flapping shard spends progressively longer
    out of the ring instead of churning membership. *)

type config = {
  eject_after : int;    (** consecutive failures: routable -> Ejected *)
  rejoin_after : int;   (** consecutive successes: Probation -> Up *)
  cooldown_base : float;(** first ejection's cooldown, seconds *)
  cooldown_cap : float; (** cooldown growth ceiling, seconds *)
}

val default_config : config

type state = Up | Suspect | Probation | Ejected

val state_name : state -> string

type t

val create : config -> t
val state : t -> state

(** In the ring, receives data traffic ([Up] or [Suspect]). *)
val routable : t -> bool

(** Should receive health probes (everything except [Ejected]). *)
val probeable : t -> bool

(** Current cooldown an ejection (would) serve, seconds. *)
val cooldown : t -> float

(** Each notifier returns [`Changed s] when the state moved (the router
    rebuilds the ring iff routability changed), [`Unchanged] otherwise.
    [tick] drives the timed [Ejected -> Probation] edge. *)

val note_success : t -> [ `Changed of state | `Unchanged ]
val note_failure : t -> now:float -> [ `Changed of state | `Unchanged ]
val tick : t -> now:float -> [ `Changed of state | `Unchanged ]
