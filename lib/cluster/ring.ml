(* FNV-1a over Int64 (the 64-bit constants do not fit OCaml's native
   63-bit int), then a finalizing avalanche so that near-identical keys
   ("shard0#12" vs "shard0#13") land far apart on the ring. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  (* splitmix64-style finalizer *)
  let x = ref !h in
  x := Int64.logxor !x (Int64.shift_right_logical !x 30);
  x := Int64.mul !x 0xbf58476d1ce4e5b9L;
  x := Int64.logxor !x (Int64.shift_right_logical !x 27);
  x := Int64.mul !x 0x94d049bb133111ebL;
  x := Int64.logxor !x (Int64.shift_right_logical !x 31);
  (* nonnegative native int *)
  Int64.to_int (Int64.shift_right_logical !x 1)

type t = {
  points : (int * string) array; (* sorted by (hash, member) *)
  members : string list;         (* sorted, deduplicated *)
}

let create ?(vnodes = 64) members =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let members = List.sort_uniq String.compare members in
  let points =
    List.concat_map
      (fun m ->
        List.init vnodes (fun i -> (hash (Printf.sprintf "%s#%d" m i), m)))
      members
    |> Array.of_list
  in
  Array.sort compare points;
  { points; members }

let members t = t.members
let is_empty t = t.members = []

(* First point with hash >= h, wrapping to 0. *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owners t key ~n =
  if n < 0 then invalid_arg "Ring.owners: negative n";
  let total = Array.length t.points in
  if total = 0 || n = 0 then []
  else begin
    let want = Int.min n (List.length t.members) in
    let start = successor t (hash key) in
    let acc = ref [] and found = ref 0 and i = ref 0 in
    while !found < want && !i < total do
      let _, m = t.points.((start + !i) mod total) in
      if not (List.mem m !acc) then begin
        acc := m :: !acc;
        incr found
      end;
      incr i
    done;
    List.rev !acc
  end
