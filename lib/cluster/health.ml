type config = {
  eject_after : int;
  rejoin_after : int;
  cooldown_base : float;
  cooldown_cap : float;
}

let default_config =
  { eject_after = 3; rejoin_after = 2; cooldown_base = 1.0; cooldown_cap = 30.0 }

type state = Up | Suspect | Probation | Ejected

let state_name = function
  | Up -> "up"
  | Suspect -> "suspect"
  | Probation -> "probation"
  | Ejected -> "ejected"

type t = {
  cfg : config;
  mutable st : state;
  mutable fails : int;      (* consecutive failures while routable *)
  mutable succs : int;      (* consecutive probe successes in probation *)
  mutable ejected_at : float;
  mutable ejections : int;  (* lifetime count: drives cooldown growth *)
}

let create cfg =
  if cfg.eject_after < 1 then invalid_arg "Health: eject_after must be >= 1";
  if cfg.rejoin_after < 1 then invalid_arg "Health: rejoin_after must be >= 1";
  if cfg.cooldown_base < 0.0 || cfg.cooldown_cap < cfg.cooldown_base then
    invalid_arg "Health: need 0 <= cooldown_base <= cooldown_cap";
  { cfg; st = Up; fails = 0; succs = 0; ejected_at = 0.0; ejections = 0 }

let state t = t.st
let routable t = match t.st with Up | Suspect -> true | Probation | Ejected -> false
let probeable t = match t.st with Ejected -> false | _ -> true

let cooldown t =
  let doublings = Int.max 0 (t.ejections - 1) in
  (* cap the shift too: 2^60 seconds is already "never" *)
  let factor = Float.of_int (1 lsl Int.min doublings 60) in
  Float.min t.cfg.cooldown_cap (t.cfg.cooldown_base *. factor)

let changed t st =
  t.st <- st;
  `Changed st

let note_success t =
  match t.st with
  | Up ->
      t.fails <- 0;
      `Unchanged
  | Suspect ->
      t.fails <- 0;
      changed t Up
  | Probation ->
      t.succs <- t.succs + 1;
      if t.succs >= t.cfg.rejoin_after then begin
        t.fails <- 0;
        changed t Up
      end
      else `Unchanged
  | Ejected ->
      (* late good news about a shard already ejected: ignore; it must
         re-earn its place through probation *)
      `Unchanged

let eject t ~now =
  t.ejections <- t.ejections + 1;
  t.ejected_at <- now;
  t.fails <- 0;
  t.succs <- 0;
  changed t Ejected

let note_failure t ~now =
  match t.st with
  | Up ->
      t.fails <- 1;
      if t.cfg.eject_after = 1 then eject t ~now else changed t Suspect
  | Suspect ->
      t.fails <- t.fails + 1;
      if t.fails >= t.cfg.eject_after then eject t ~now else `Unchanged
  | Probation -> eject t ~now
  | Ejected -> `Unchanged

let tick t ~now =
  match t.st with
  | Ejected when now -. t.ejected_at >= cooldown t ->
      t.succs <- 0;
      changed t Probation
  | _ -> `Unchanged
