module Json = Dt_util.Json
module Log = Dt_util.Log
module Uarch = Dt_refcpu.Uarch

module Spec = struct
  type t = {
    shards : int;
    socket_dir : string;
    router_socket : string;
    uarch : Uarch.uarch;
    router : Router.config;
    serve_flags : string list;
    shard_faults : (int * string) list;
    restart_max : int;
    restart_backoff : float;
    restart_cap : float;
    grace : float;
  }

  let shard_name i = Printf.sprintf "shard%d" i
  let shard_socket t i = Filename.concat t.socket_dir (shard_name i ^ ".sock")

  let serve_flags_of_json = function
    | None -> []
    | Some (Json.Obj members) ->
        List.concat_map
          (fun (k, v) ->
            let flag = "--" ^ k in
            match v with
            | Json.Bool true -> [ flag ]
            | Json.Bool false -> []
            | Json.Num _ | Json.Str _ ->
                [ flag; (match v with
                         | Json.Str s -> s
                         | v -> Json.to_string v) ]
            | _ ->
                invalid_arg
                  (Printf.sprintf
                     "fleet spec: serve.%s must be a number, string or bool" k))
          members
    | Some _ -> invalid_arg "fleet spec: \"serve\" must be an object"

  let shard_faults_of_json shards = function
    | None -> []
    | Some (Json.Obj members) ->
        List.map
          (fun (k, v) ->
            let idx =
              match int_of_string_opt k with
              | Some i when i >= 0 && i < shards -> i
              | _ ->
                  invalid_arg
                    (Printf.sprintf
                       "fleet spec: shard_faults key %S is not a shard index" k)
            in
            (idx, Json.get_str ~ctx:("shard_faults." ^ k) v))
          members
    | Some _ -> invalid_arg "fleet spec: \"shard_faults\" must be an object"

  let of_json j =
    let ctx = "fleet spec" in
    let shards =
      match Json.member "shards" j with
      | Some v -> Json.get_int ~ctx:"shards" v
      | None -> invalid_arg "fleet spec: missing \"shards\""
    in
    if shards < 1 then invalid_arg "fleet spec: shards must be >= 1";
    let socket_dir =
      match Json.member "socket_dir" j with
      | Some v -> Json.get_str ~ctx:"socket_dir" v
      | None -> invalid_arg "fleet spec: missing \"socket_dir\""
    in
    let router_socket =
      Json.mem_str ~ctx "router_socket"
        ~default:(Filename.concat socket_dir "router.sock")
        j
    in
    let uarch_name = Json.mem_str ~ctx "uarch" ~default:"haswell" j in
    let uarch =
      match Uarch.uarch_of_name uarch_name with
      | Some u -> u
      | None ->
          invalid_arg
            (Printf.sprintf "fleet spec: unknown uarch %S" uarch_name)
    in
    let d = Router.default_config in
    let sub key defaults =
      match Json.member key j with
      | None -> Json.Obj []
      | Some (Json.Obj _ as o) -> o
      | Some _ ->
          invalid_arg
            (Printf.sprintf "fleet spec: %S must be an object%s" key defaults)
    in
    let breaker = sub "breaker" "" in
    let health = sub "health" "" in
    let hd = d.Router.health in
    let router =
      {
        Router.vnodes = Json.mem_int ~ctx "vnodes" ~default:d.Router.vnodes j;
        replicas = Json.mem_int ~ctx "replicas" ~default:d.Router.replicas j;
        reply_budget =
          Json.mem_num ~ctx "reply_budget_s" ~default:d.Router.reply_budget j;
        probe_interval =
          Json.mem_num ~ctx "probe_interval_s" ~default:d.Router.probe_interval j;
        probe_budget =
          Json.mem_num ~ctx "probe_budget_s" ~default:d.Router.probe_budget j;
        max_inflight =
          Json.mem_int ~ctx "max_inflight" ~default:d.Router.max_inflight j;
        max_pending =
          Json.mem_int ~ctx "max_pending" ~default:d.Router.max_pending j;
        breaker_threshold =
          Json.mem_int ~ctx:"breaker" "threshold"
            ~default:d.Router.breaker_threshold breaker;
        breaker_cooldown =
          Json.mem_num ~ctx:"breaker" "cooldown_s"
            ~default:d.Router.breaker_cooldown breaker;
        health =
          {
            Health.eject_after =
              Json.mem_int ~ctx:"health" "eject_after"
                ~default:hd.Health.eject_after health;
            rejoin_after =
              Json.mem_int ~ctx:"health" "rejoin_after"
                ~default:hd.Health.rejoin_after health;
            cooldown_base =
              Json.mem_num ~ctx:"health" "cooldown_s"
                ~default:hd.Health.cooldown_base health;
            cooldown_cap =
              Json.mem_num ~ctx:"health" "cooldown_cap_s"
                ~default:hd.Health.cooldown_cap health;
          };
      }
    in
    let restart = sub "restart" "" in
    {
      shards;
      socket_dir;
      router_socket;
      uarch;
      router;
      serve_flags = serve_flags_of_json (Json.member "serve" j);
      shard_faults = shard_faults_of_json shards (Json.member "shard_faults" j);
      restart_max = Json.mem_int ~ctx:"restart" "max" ~default:5 restart;
      restart_backoff =
        Json.mem_num ~ctx:"restart" "backoff_s" ~default:0.2 restart;
      restart_cap = Json.mem_num ~ctx:"restart" "cap_s" ~default:2.0 restart;
      grace = Json.mem_num ~ctx:"restart" "grace_s" ~default:2.0 restart;
    }

  let load path = of_json (Json.parse_file path)

  let example =
    {|{
  "shards": 3,
  "socket_dir": "/tmp/difftune_fleet",
  "router_socket": "/tmp/difftune_fleet/router.sock",
  "replicas": 2,
  "vnodes": 64,
  "reply_budget_s": 0.25,
  "probe_interval_s": 0.5,
  "probe_budget_s": 0.25,
  "max_inflight": 64,
  "max_pending": 4096,
  "breaker": { "threshold": 3, "cooldown_s": 1.0 },
  "health": { "eject_after": 3, "rejoin_after": 2,
              "cooldown_s": 1.0, "cooldown_cap_s": 30.0 },
  "uarch": "haswell",
  "serve": { "queue": 256, "batch": 16 },
  "restart": { "max": 5, "backoff_s": 0.2, "cap_s": 2.0, "grace_s": 2.0 },
  "shard_faults": {}
}
|}
end

(* ---- supervision ---- *)

type child = {
  idx : int;
  mutable pid : int option;
  mutable restarts : int;
  mutable next_start : float;
  mutable gave_up : bool;
}

(* Shard daemons inherit our environment minus any DIFFTUNE_FAULTS (the
   supervisor being under test must not arm its children) plus the
   shard's own spec entry, if any. *)
let child_env spec idx =
  let base =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           not (String.length kv >= 16
                && String.equal (String.sub kv 0 16) "DIFFTUNE_FAULTS="))
  in
  let extra =
    match List.assoc_opt idx spec.Spec.shard_faults with
    | Some faults -> [ "DIFFTUNE_FAULTS=" ^ faults ]
    | None -> []
  in
  Array.of_list (base @ extra)

let spawn_shard spec ~cli idx =
  let args =
    [ cli; "serve"; "--socket"; Spec.shard_socket spec idx; "--uarch";
      Uarch.uarch_name spec.Spec.uarch ]
    @ spec.Spec.serve_flags
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close devnull with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.create_process_env cli (Array.of_list args) (child_env spec idx)
        devnull Unix.stdout Unix.stderr)

let restart_delay spec restarts =
  let doublings = Int.max 0 (Int.min (restarts - 1) 30) in
  Float.min spec.Spec.restart_cap
    (spec.Spec.restart_backoff *. Float.of_int (1 lsl doublings))

let supervise spec ~cli children now =
  List.iter
    (fun c ->
      (match c.pid with
      | Some pid -> (
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, status ->
              let describe =
                match status with
                | Unix.WEXITED n -> Printf.sprintf "exited %d" n
                | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
                | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n
              in
              Log.warn "fleet: %s %s" (Spec.shard_name c.idx) describe;
              c.pid <- None;
              c.restarts <- c.restarts + 1;
              if c.restarts > spec.Spec.restart_max then begin
                c.gave_up <- true;
                Log.warn "fleet: %s gave up after %d restarts"
                  (Spec.shard_name c.idx) spec.Spec.restart_max
              end
              else begin
                let delay = restart_delay spec c.restarts in
                c.next_start <- now +. delay;
                Log.status "fleet: restarting %s in %.2fs (attempt %d/%d)"
                  (Spec.shard_name c.idx) delay c.restarts
                  spec.Spec.restart_max
              end
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> c.pid <- None)
      | None -> ());
      if c.pid = None && (not c.gave_up) && c.next_start <= now then
        c.pid <- Some (spawn_shard spec ~cli c.idx))
    children

let terminate spec children =
  let live () = List.filter_map (fun c -> c.pid) children in
  List.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    (live ());
  let deadline = Unix.gettimeofday () +. spec.Spec.grace in
  let rec wait_all () =
    List.iter
      (fun c ->
        match c.pid with
        | Some pid -> (
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | _ -> c.pid <- None
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> c.pid <- None)
        | None -> ())
      children;
    if live () <> [] && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.02;
      wait_all ()
    end
  in
  wait_all ();
  List.iter
    (fun c ->
      match c.pid with
      | Some pid ->
          Log.warn "fleet: %s ignored SIGTERM; killing" (Spec.shard_name c.idx);
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          c.pid <- None
      | None -> ())
    children

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      match Unix.mkdir d 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let launch spec ~cli =
  mkdir_p spec.Spec.socket_dir;
  let names = List.init spec.Spec.shards Spec.shard_name in
  let sockets =
    List.init spec.Spec.shards (fun i ->
        (Spec.shard_name i, Spec.shard_socket spec i))
  in
  let children =
    List.init spec.Spec.shards (fun idx ->
        { idx; pid = None; restarts = 0; next_start = 0.0; gave_up = false })
  in
  let router =
    Router.create spec.Spec.router ~uarch:spec.Spec.uarch ~shards:names
  in
  Log.status "fleet: %d shards under %s, router on %s" spec.Spec.shards
    spec.Spec.socket_dir spec.Spec.router_socket;
  Fun.protect
    ~finally:(fun () -> terminate spec children)
    (fun () ->
      Loop.run router ~listen:spec.Spec.router_socket ~shards:sockets
        ~on_tick:(supervise spec ~cli children) ());
  (* final aggregated report *)
  print_endline "cluster report:";
  List.iter
    (fun (k, v) -> Printf.printf "  %s=%s\n" k v)
    (Router.stats_pairs router);
  let restarts = List.fold_left (fun a c -> a + c.restarts) 0 children in
  Printf.printf "  fleet.restarts=%d\n%!" restarts
