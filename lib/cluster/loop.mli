(** The router's socket transport: one select loop over the client
    listener, every client connection, and one outbound connection per
    shard.

    Responsibilities split: {!Router} owns all routing/failover/health
    decisions; this loop only moves bytes — it accepts clients, feeds
    their lines to {!Router.submit}, feeds shard replies to
    {!Router.on_shard_line}, (re)establishes shard connections with a
    short retry cadence (handing each live connection to the router as
    a send closure), calls {!Router.tick} every iteration, and exits
    when {!Router.stopped} holds.  [SIGTERM]/[SIGINT] start a graceful
    drain via {!Router.request_drain} (handlers shared with
    {!Dt_serve.Server}).

    [on_tick now] runs once per iteration — the fleet supervisor hooks
    child reaping and restarts into it. *)

val run :
  Router.t ->
  listen:string ->
  shards:(string * string) list ->
  (* (shard name, socket path); must cover {!Router.shard_names} *)
  ?reconnect_delay:float ->
  ?on_tick:(float -> unit) ->
  unit ->
  unit
