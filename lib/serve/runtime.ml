module Fault = Dt_difftune.Fault
module Faultsim = Dt_util.Faultsim
module Sync = Dt_util.Sync

type config = {
  queue_capacity : int;
  batch : int;
  cycle_budget : int;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  seed : int;
}

let default_config =
  {
    queue_capacity = 64;
    batch = 16;
    cycle_budget = 200_000;
    max_retries = 2;
    backoff_base = 0.01;
    backoff_cap = 0.25;
    jitter = 0.25;
    breaker_threshold = 3;
    breaker_cooldown = 1.0;
    seed = 0;
  }

type backend_stats = {
  mutable requests : int;        (* requests that attempted this backend *)
  mutable served : int;          (* responses this backend produced *)
  mutable served_fallback : int; (* ... of which as a degraded fallback *)
  mutable retries : int;
  mutable timeouts : int;        (* cycle-budget overruns *)
  mutable faults : int;          (* transient attempt failures *)
  mutable breaker_skips : int;   (* fast-fail rejections by the breaker *)
  mutable exhausted : int;       (* requests this backend gave up on *)
}

type lane = {
  backend : Backend.t;
  breaker : Breaker.t;
  bstats : backend_stats;
}

type entry = {
  id : string;
  asm : string;
  rng : Dt_util.Rng.t; (* per-request jitter stream, split at admission *)
  respond : string -> unit;
}

type t = {
  cfg : config;
  clock : Clock.t;
  started : float; (* clock time at creation, for ping uptime *)
  pool : Dt_util.Pool.t;
  owned_pool : bool;
  lanes : lane list;
  queue : entry Queue.t;
  lifecycle : Lifecycle.t option;
  m : Sync.mutex;
  master_rng : Dt_util.Rng.t;
  mutable received : int;
  mutable answered : int;
  mutable ok : int;
  mutable degraded : int;
  mutable failed : int;
  mutable overloaded : int;
  mutable malformed : int;
  mutable queue_hwm : int;
  mutable stopped : bool;
}

let create ?pool ?clock ?lifecycle cfg backends =
  if backends = [] then invalid_arg "Runtime.create: empty backend chain";
  if cfg.queue_capacity < 1 then
    invalid_arg "Runtime.create: queue_capacity must be >= 1";
  if cfg.batch < 1 then invalid_arg "Runtime.create: batch must be >= 1";
  if cfg.cycle_budget < 1 then
    invalid_arg "Runtime.create: cycle_budget must be >= 1";
  if cfg.max_retries < 0 then
    invalid_arg "Runtime.create: max_retries must be >= 0";
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  let owned_pool = pool = None in
  let pool =
    match pool with Some p -> p | None -> Dt_util.Pool.create ()
  in
  let lanes =
    List.map
      (fun backend ->
        {
          backend;
          breaker =
            Breaker.create ~clock ~threshold:cfg.breaker_threshold
              ~cooldown:cfg.breaker_cooldown backend.Backend.name;
          bstats =
            {
              requests = 0;
              served = 0;
              served_fallback = 0;
              retries = 0;
              timeouts = 0;
              faults = 0;
              breaker_skips = 0;
              exhausted = 0;
            };
        })
      backends
  in
  {
    cfg;
    clock;
    started = clock.Clock.now ();
    pool;
    owned_pool;
    lanes;
    queue = Queue.create ();
    lifecycle;
    m = Sync.mutex "runtime.m";
    master_rng = Dt_util.Rng.create cfg.seed;
    received = 0;
    answered = 0;
    ok = 0;
    degraded = 0;
    failed = 0;
    overloaded = 0;
    malformed = 0;
    queue_hwm = 0;
    stopped = false;
  }

let config t = t.cfg

let locked t f = Sync.with_lock t.m f

let pending t = locked t (fun () -> Queue.length t.queue)

(* Every response funnels through here: the exactly-once accounting and
   the per-status counters live in one place. *)
let emit t ~id ~respond resp =
  respond (Protocol.encode_response ~id resp);
  locked t (fun () ->
      t.answered <- t.answered + 1;
      match resp with
      | Protocol.Answer { via = []; _ } -> t.ok <- t.ok + 1
      | Protocol.Answer _ -> t.degraded <- t.degraded + 1
      | Protocol.Overloaded _ -> t.overloaded <- t.overloaded + 1
      | Protocol.Failed (Fault.Request_malformed _) ->
          t.malformed <- t.malformed + 1;
          t.failed <- t.failed + 1
      | Protocol.Failed _ -> t.failed <- t.failed + 1
      | Protocol.Stat_report _ | Protocol.Pong _ | Protocol.Flushed _
      | Protocol.Bye ->
          ())

(* ---- one backend attempt loop: breaker, retries, backoff ---- *)

let backoff t rng attempt_no =
  let expo = t.cfg.backoff_base *. (2.0 ** float_of_int attempt_no) in
  let capped = Float.min expo t.cfg.backoff_cap in
  capped *. (1.0 +. (t.cfg.jitter *. Dt_util.Rng.float rng 1.0))

(* Runs on a pool worker.  Returns [Ok cycles] or [Error reason_slug].
   Deadline overruns are terminal for the backend (retrying a slow block
   just burns another budget); everything else is transient and retried
   with backoff.  [?prefetched] short-circuits attempt 0 with a value
   the drain thread already computed through the backend's batched entry
   point; every other piece of the contract — breaker acquisition and
   accounting, request counters, fault injection, validity checks,
   retries — is unchanged, and a rejected prefetch (non-finite) retries
   through the scalar path. *)
let attempt t lane rng ?prefetched block =
  let rec go attempt_no =
    if not (Breaker.acquire lane.breaker) then begin
      locked t (fun () ->
          lane.bstats.breaker_skips <- lane.bstats.breaker_skips + 1);
      Error "breaker_open"
    end
    else begin
      if attempt_no = 0 then
        locked t (fun () -> lane.bstats.requests <- lane.bstats.requests + 1);
      match
        Faultsim.fire_exn "serve.worker_crash";
        match prefetched with
        | Some v when attempt_no = 0 -> v
        | _ ->
            lane.backend.Backend.predict ~cycle_budget:t.cfg.cycle_budget block
      with
      | v when Float.is_finite v && v >= 0.0 ->
          Breaker.success lane.breaker;
          Ok v
      | _ -> transient "non_finite" attempt_no
      | exception Dt_mca.Pipeline.Budget_exceeded _ ->
          Breaker.failure lane.breaker;
          locked t (fun () ->
              lane.bstats.timeouts <- lane.bstats.timeouts + 1);
          Error "deadline"
      | exception (Sync.Lock_cycle _ as e) ->
          (* Dynamic-checker verdicts are not transient backend faults:
             let [process] turn them into structured concurrency faults
             instead of burning the retry budget on them. *)
          raise e
      | exception (Sync.Race _ as e) -> raise e
      | exception e ->
          ignore (e : exn);
          transient "worker_fault" attempt_no
    end
  and transient reason attempt_no =
    Breaker.failure lane.breaker;
    locked t (fun () -> lane.bstats.faults <- lane.bstats.faults + 1);
    if attempt_no < t.cfg.max_retries then begin
      locked t (fun () -> lane.bstats.retries <- lane.bstats.retries + 1);
      t.clock.Clock.sleep (backoff t rng attempt_no);
      go (attempt_no + 1)
    end
    else Error reason
  in
  go 0

(* ---- the degradation chain (runs on a pool worker) ---- *)

let process_chain t ?lane0_value entry =
  match Dt_x86.Parser.block_result entry.asm with
  | Error e ->
      Error
        (Fault.Block_unparsable { line = e.line; col = e.col; detail = e.msg })
  | Ok [] -> Error (Fault.Request_malformed { detail = "empty block" })
  | Ok instrs ->
      let block = Dt_x86.Block.of_list instrs in
      let rec chain via = function
        | [] -> (
            match List.rev via with
            | [ (b, "deadline") ] ->
                Error
                  (Fault.Deadline_exceeded
                     { backend = b; cycle_budget = t.cfg.cycle_budget })
            | [ (b, reason) ] ->
                Error (Fault.Backend_unavailable { backend = b; reason })
            | failed -> Error (Fault.All_backends_failed { chain = failed }))
        | lane :: rest -> (
            let prefetched = if via = [] then lane0_value else None in
            match attempt t lane entry.rng ?prefetched block with
            | Ok cycles ->
                locked t (fun () ->
                    lane.bstats.served <- lane.bstats.served + 1;
                    if via <> [] then
                      lane.bstats.served_fallback <-
                        lane.bstats.served_fallback + 1);
                Ok
                  {
                    Protocol.cycles;
                    backend = lane.backend.Backend.name;
                    via = List.rev via;
                    model = None;
                  }
            | Error reason ->
                locked t (fun () ->
                    lane.bstats.exhausted <- lane.bstats.exhausted + 1);
                chain ((lane.backend.Backend.name, reason) :: via) rest)
      in
      chain [] t.lanes

let process t ?lane0_value entry =
  try
    (* Seeded lock-order inversion: probe the runtime queue lock against
       the first lane's breaker lock in both nesting orders.  Under
       DIFFTUNE_RACECHECK=1 the second nesting closes a cycle and the
       handler below reports a structured Fault.Lock_cycle; with
       checking off it is four uncontended lock/unlock pairs. *)
    if Faultsim.fire "race.lock_cycle" then
      (match t.lanes with
      | lane :: _ -> Sync.cycle_probe t.m (Breaker.handle lane.breaker)
      | [] -> ());
    process_chain t ?lane0_value entry
  with
  | Sync.Lock_cycle chain -> Error (Fault.Lock_cycle { chain })
  | Sync.Race { structure; first; second } ->
      Error (Fault.Race { structure; first; second })

(* ---- batch evaluation on the pool ---- *)

(* Batched lane-0 prefetch, on the drain thread: when the first backend
   offers [predict_batch] and its breaker is closed, the whole admitted
   batch is predicted with one call, and each request's attempt 0
   consumes its value instead of a scalar call.  Any shortfall — no
   batched entry point, open breaker, unparsable entries, an exception
   or a wrong-length result — degrades to the per-request path; the
   prefetch itself never touches breakers or counters. *)
let prefetch_lane0 t entries =
  let n = Array.length entries in
  let none () = Array.make n None in
  match t.lanes with
  | { backend = { Backend.predict_batch = Some pb; _ }; breaker; _ } :: _
    when Breaker.state breaker = Breaker.Closed -> (
      let blocks =
        Array.map
          (fun e ->
            match Dt_x86.Parser.block_result e.asm with
            | Ok (_ :: _ as instrs) -> Some (Dt_x86.Block.of_list instrs)
            | Ok [] | Error _ -> None)
          entries
      in
      let idx = ref [] in
      Array.iteri
        (fun i b -> if Option.is_some b then idx := i :: !idx)
        blocks;
      let idxs = Array.of_list (List.rev !idx) in
      if Array.length idxs = 0 then none ()
      else
        let packed = Array.map (fun i -> Option.get blocks.(i)) idxs in
        match pb ~cycle_budget:t.cfg.cycle_budget packed with
        | vals when Array.length vals = Array.length idxs ->
            let out = none () in
            Array.iteri (fun j i -> out.(i) <- Some vals.(j)) idxs;
            out
        | _ -> none ()
        | exception _ -> none ())
  | _ -> none ()

let drain_batch t =
  let entries =
    locked t (fun () ->
        let n = Int.min t.cfg.batch (Queue.length t.queue) in
        Array.init n (fun _ -> Queue.pop t.queue))
  in
  let n = Array.length entries in
  if n = 0 then begin
    (* Even an idle service must reap finished background retrains. *)
    (match t.lifecycle with Some lc -> Lifecycle.tick lc | None -> ());
    0
  end
  else begin
    (* The serving-model label for this whole batch, read once: the
       lifecycle only swaps inside [tick] (below, after the emits), so a
       batch can never mix versions. *)
    let mver =
      match t.lifecycle with
      | Some lc -> Some (Printf.sprintf "v%d" (Lifecycle.version lc))
      | None -> None
    in
    (* Pre-filled with a structured error so that even a runtime bug
       that aborts the batch cannot drop a response. *)
    let results =
      Array.make n
        (Error
           (Fault.All_backends_failed { chain = [ ("runtime", "batch_aborted") ] }))
    in
    let prefetch =
      try prefetch_lane0 t entries
      with e ->
        Dt_util.Log.warn "serve: lane-0 prefetch failed: %s"
          (Printexc.to_string e);
        Array.make n None
    in
    (try
       Dt_util.Pool.run t.pool n (fun i ->
           results.(i) <- process t ?lane0_value:prefetch.(i) entries.(i))
     with e ->
       Dt_util.Log.warn "serve: batch aborted by worker error: %s"
         (Printexc.to_string e));
    Array.iteri
      (fun i entry ->
        let resp =
          match results.(i) with
          | Ok answer ->
              let answer =
                if String.equal answer.Protocol.backend Lifecycle.backend_name
                then { answer with Protocol.model = mver }
                else answer
              in
              results.(i) <- Ok answer;
              Protocol.Answer answer
          | Error fault -> Protocol.Failed fault
        in
        emit t ~id:entry.id ~respond:entry.respond resp)
      entries;
    (* Lifecycle housekeeping at the batch boundary, after every
       response is out: shadow-score this batch's surrogate-served
       answers in admission order (deterministic under any pool size),
       then let the lifecycle start/reap retrains and hot-swap. *)
    (match t.lifecycle with
    | None -> ()
    | Some lc ->
        Array.iteri
          (fun i entry ->
            match results.(i) with
            | Ok a when String.equal a.Protocol.backend Lifecycle.backend_name
              ->
                Lifecycle.observe lc ~asm:entry.asm ~value:a.Protocol.cycles
            | Ok _ | Error _ -> ())
          entries;
        Lifecycle.tick lc);
    n
  end

let drain t = ignore (drain_batch t)

let drain_all t =
  let rec go total =
    let n = drain_batch t in
    if n = 0 then total else go (total + n)
  in
  go 0

(* ---- stats ---- *)

let stats_pairs t =
  let i = string_of_int in
  let global =
    locked t (fun () ->
        [
          ("received", i t.received);
          ("answered", i t.answered);
          ("ok", i t.ok);
          ("degraded", i t.degraded);
          ("failed", i t.failed);
          ("overloaded", i t.overloaded);
          ("malformed", i t.malformed);
          ("queue_depth", i (Queue.length t.queue));
          ("queue_hwm", i t.queue_hwm);
          ("queue_capacity", i t.cfg.queue_capacity);
        ])
  in
  let per_lane lane =
    let b = lane.bstats in
    (* Read everything breaker-locked before taking the runtime lock:
       acquiring breaker.m while holding runtime.m was the one nested
       acquisition in the serving path, and the dt_race dynamic layer
       (rightly) charges such edges against the declared lock order. *)
    let opened, half_opened, closed, rejected = Breaker.counters lane.breaker in
    let bstate = Breaker.state_name (Breaker.state lane.breaker) in
    let p key v = (lane.backend.Backend.name ^ "." ^ key, v) in
    locked t (fun () ->
        [
          p "requests" (i b.requests);
          p "served" (i b.served);
          p "fallbacks" (i b.served_fallback);
          p "retries" (i b.retries);
          p "timeouts" (i b.timeouts);
          p "faults" (i b.faults);
          p "breaker_skips" (i b.breaker_skips);
          p "exhausted" (i b.exhausted);
          p "breaker_state" bstate;
          p "breaker_opened" (i opened);
          p "breaker_half_opened" (i half_opened);
          p "breaker_closed" (i closed);
          p "breaker_rejected" (i rejected);
        ])
    @
    match lane.backend.Backend.xstats with
    | None -> []
    | Some f ->
        List.map (fun (k, v) -> (lane.backend.Backend.name ^ "." ^ k, v)) (f ())
  in
  let lifecycle =
    match t.lifecycle with
    | None -> []
    | Some lc ->
        List.map (fun (k, v) -> ("lifecycle." ^ k, v)) (Lifecycle.stats_pairs lc)
  in
  let racecheck =
    List.map (fun (k, v) -> ("racecheck." ^ k, v)) (Sync.stats ())
  in
  global @ List.concat_map per_lane t.lanes @ lifecycle @ racecheck

(* The health-probe payload of a [ping]: cheap enough for a router to
   poll every few hundred milliseconds. *)
let ping_payload t =
  {
    Protocol.version = Protocol.proto_version;
    uptime = t.clock.Clock.now () -. t.started;
    model =
      (match t.lifecycle with
      | Some lc -> Some (Printf.sprintf "v%d" (Lifecycle.version lc))
      | None -> None);
    queue_depth = locked t (fun () -> Queue.length t.queue);
  }

let breaker t name =
  List.find_map
    (fun lane ->
      if String.equal lane.backend.Backend.name name then Some lane.breaker
      else None)
    t.lanes

(* ---- admission ---- *)

let submit t ~line ~respond =
  (* Deterministic input corruption: an armed [serve.malformed_input]
     mangles the tail of the line (the id usually survives, so the
     structured error still reaches the right caller). *)
  let line =
    if Faultsim.fire "serve.malformed_input" then line ^ " ;; .corrupt %%"
    else line
  in
  locked t (fun () -> t.received <- t.received + 1);
  match Protocol.decode line with
  | Error (id, fault) ->
      emit t ~id ~respond (Protocol.Failed fault);
      `Ok
  | Ok (id, Protocol.Stats) ->
      emit t ~id ~respond (Protocol.Stat_report (stats_pairs t));
      `Ok
  | Ok (id, Protocol.Ping) ->
      emit t ~id ~respond (Protocol.Pong (ping_payload t));
      `Ok
  | Ok (id, Protocol.Flush) ->
      let n = drain_all t in
      emit t ~id ~respond (Protocol.Flushed n);
      `Ok
  | Ok (id, Protocol.Shutdown) ->
      ignore (drain_all t);
      emit t ~id ~respond Protocol.Bye;
      `Shutdown
  | Ok (id, Protocol.Predict asm) -> (
      let admitted =
        locked t (fun () ->
            if Queue.length t.queue >= t.cfg.queue_capacity then false
            else begin
              Queue.add
                {
                  id;
                  asm;
                  rng = Dt_util.Rng.split t.master_rng;
                  respond;
                }
                t.queue;
              t.queue_hwm <- Int.max t.queue_hwm (Queue.length t.queue);
              true
            end)
      in
      if not admitted then
        emit t ~id ~respond
          (Protocol.Overloaded { capacity = t.cfg.queue_capacity });
      `Ok)

let shutdown t =
  ignore (drain_all t);
  let fresh =
    locked t (fun () ->
        let fresh = not t.stopped in
        t.stopped <- true;
        fresh)
  in
  if fresh then begin
    (match t.lifecycle with Some lc -> Lifecycle.stop lc | None -> ());
    if t.owned_pool then Dt_util.Pool.shutdown t.pool
  end
