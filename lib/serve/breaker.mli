(** Per-backend circuit breaker: closed → open → half-open → closed.

    A breaker wraps one predictor.  While {e closed} it admits every
    call and counts consecutive failures; at [threshold] it {e opens}
    and fails fast (no call reaches the backend) until [cooldown]
    seconds of the injected {!Clock.t} have passed; the first admission
    after the cooldown moves it to {e half-open} and lets exactly one
    probe through — a successful probe closes the breaker (failure
    counter reset), a failed one re-opens it for another cooldown.

    All transitions are driven by the injected clock, so tests exercise
    the full cycle deterministically with {!Clock.manual}.  Thread-safe:
    pool workers share one breaker per backend. *)

type t

type state = Closed | Open | Half_open

val state_name : state -> string

(** [create ~clock ~threshold ~cooldown name] — [threshold] consecutive
    failures open the breaker; it stays open for [cooldown] seconds.
    Raises [Invalid_argument] if [threshold < 1] or [cooldown < 0]. *)
val create : clock:Clock.t -> threshold:int -> cooldown:float -> string -> t

val name : t -> string
val state : t -> state

(** The breaker's own lock, exposed for the seeded [race.lock_cycle]
    fault site ({!Dt_util.Sync.cycle_probe} against the runtime queue
    lock).  Production code must not acquire it directly. *)
val handle : t -> Dt_util.Sync.mutex

(** [acquire t] — permission to call the backend now.  [false] means
    fail fast (open, or half-open with the probe slot taken).  A [true]
    from a half-open breaker claims the probe slot; the caller must
    report {!success} or {!failure}. *)
val acquire : t -> bool

val success : t -> unit
val failure : t -> unit

(** Cumulative transition / rejection counters, for the [stats]
    response: [(opened, half_opened, closed, rejected)]. *)
val counters : t -> int * int * int * int
