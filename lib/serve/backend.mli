(** Prediction backends for the serving degradation chain.

    A backend is a named timing predictor.  The canonical chain, in
    decreasing fidelity and increasing robustness, is

    {v surrogate -> mca -> bound v}

    - {!surrogate}: a trained neural model (Ithemal-style); fixed
      compute per instruction, never needs a cycle budget;
    - {!mca}: the llvm-mca clone under a parameter table (possibly a
      learned one — which is exactly when a pathological table can make
      it pathologically slow, hence the enforced [cycle_budget]);
    - {!bound}: the analytic max(frontend, port-pressure, dependency
      chain) lower bound — microseconds per block, no simulation loop,
      the always-available last resort.

    The [serve.slow_block] {!Dt_util.Faultsim} site lives in {!mca}: an
    armed hit swaps in a pathological million-cycle table for that one
    call, so tests can force a genuine deadline overrun through the real
    watchdog machinery. *)

type t = {
  name : string;
  predict : cycle_budget:int -> Dt_x86.Block.t -> float;
      (** May raise; the runtime treats
          [Dt_mca.Pipeline.Budget_exceeded] as a deadline and any other
          exception as a transient worker fault. *)
  predict_batch : (cycle_budget:int -> Dt_x86.Block.t array -> float array) option;
      (** Optional batched entry point: one call predicting a whole
          admitted batch.  The runtime uses it to prefetch the first
          lane's predictions on the drain thread (single caller at a
          time); per-request results must match [predict] on each block.
          May raise — the runtime then falls back to per-request
          [predict]. *)
  xstats : (unit -> (string * string) list) option;
      (** Optional backend-specific counters merged into the [stats]
          response under [<name>.<key>]. *)
}

(** [mca ?params ?cache_capacity uarch] — the llvm-mca clone under
    [params] (default: the expert table for [uarch]).  Validates
    [params] once, here.  Timings are memoized per canonical block in a
    bounded LRU ({!Dt_difftune.Simcache}, [cache_capacity] entries,
    default 1024) — the serving table is fixed, so repeated blocks cost
    one lookup; hit/miss counters surface through [xstats].  A
    [serve.slow_block] fault hit bypasses the cache in both directions
    (the pathological table must reach the deadline watchdog, and its
    timing must never be cached). *)
val mca :
  ?params:Dt_mca.Params.t -> ?cache_capacity:int -> Dt_refcpu.Uarch.uarch -> t

(** Analytic bound backend (named ["bound"]); ignores the cycle
    budget — its cost is O(block length). *)
val bound : Dt_refcpu.Uarch.uarch -> t

(** [surrogate ~features model] — a model trained by
    [Dt_difftune.Engine.train_ithemal]; [features] must match training
    time.  Named ["surrogate"].  Provides [predict_batch] through the
    batched surrogate path, each prediction bit-identical to
    [predict]. *)
val surrogate :
  features:(Dt_x86.Block.t -> float array) option -> Dt_surrogate.Model.t -> t

(** Arbitrary predictor, for tests and custom deployments; [?batch] and
    [?xstats] populate the optional fields. *)
val custom :
  ?batch:(cycle_budget:int -> Dt_x86.Block.t array -> float array) ->
  ?xstats:(unit -> (string * string) list) ->
  string -> (cycle_budget:int -> Dt_x86.Block.t -> float) -> t
