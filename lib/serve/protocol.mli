(** Newline-delimited request/response protocol of the prediction
    service.

    One request per line, fields separated by single spaces:
    {v
      <id> predict <asm>        # asm: AT&T instructions, ';'-separated
      <id> stats
      <id> ping
      <id> flush                # force-drain the admission queue
      <id> shutdown             # drain, acknowledge, stop the server
    v}
    [<id>] is any client-chosen token without whitespace; every response
    line starts with the same id, so a client can correlate answers
    under pipelining.  Responses:
    {v
      <id> ok cycles=<c> backend=<b> [model=v<n>]
      <id> degraded cycles=<c> backend=<b> via=<b1:reason1[,b2:reason2...]> [model=v<n>]
      <id> overloaded capacity=<n>
      <id> error kind=<kind> msg=<text to end of line>
      <id> stats <k>=<v> ...
      <id> pong version=<p> uptime=<s> model=<v<n>|-> queue_depth=<n>
      <id> ok flushed=<n>
      <id> ok shutdown
    v}
    [degraded] labels exactly which fallback produced the answer
    ([backend=]) and why every earlier backend in the chain did not
    ([via=], reason slugs like [breaker_open], [deadline],
    [worker_fault]).  [model=] appears on answers produced by a
    lifecycle-managed surrogate and names the model version that served
    the request — the hot-swap observability contract (it rides at the
    end of the line so prefix parsers are unaffected).  [kind] is one of
    [malformed], [parse], [deadline], [unavailable], [overloaded],
    [internal].

    {!decode} is total: malformed bytes produce an [Error] carrying the
    best-effort id and a structured {!Dt_difftune.Fault.t}, never an
    exception. *)

type request =
  | Predict of string  (** the assembly text *)
  | Stats
  | Ping
  | Flush
  | Shutdown

(** [decode line] → [Ok (id, request)] or [Error (id, fault)] where
    [id] is ["-"] when none could be recovered.  Never raises. *)
val decode : string -> (string * request, string * Dt_difftune.Fault.t) result

type answer = {
  cycles : float;
  backend : string;
  via : (string * string) list;
      (** earlier (backend, reason) pairs; [[]] = primary served *)
  model : string option;
      (** serving surrogate-model version (e.g. ["v3"]) when a
          lifecycle manages the surrogate lane; [None] otherwise *)
}

(** Payload of a [pong] response: enough for a cluster router's health
    prober to judge a shard without a full [stats] round trip. *)
type pong = {
  version : int;       (** protocol revision ({!proto_version}) *)
  uptime : float;      (** seconds since the runtime was created *)
  model : string option;
      (** serving surrogate-model version when a lifecycle manages the
          surrogate lane; [None] (encoded ["-"]) otherwise *)
  queue_depth : int;   (** admitted, not yet answered predictions *)
}

type response =
  | Answer of answer
  | Overloaded of { capacity : int }
  | Failed of Dt_difftune.Fault.t
  | Stat_report of (string * string) list
  | Pong of pong
  | Flushed of int
  | Bye

(** Protocol revision carried in [pong] lines; bumped to 2 when [ping]
    grew the health-probe payload. *)
val proto_version : int

(** Response kind keyword for a fault ([malformed] | [parse] |
    [deadline] | [unavailable] | [overloaded] | [internal]). *)
val kind_of_fault : Dt_difftune.Fault.t -> string

(** One response line (no trailing newline; embedded newlines are
    flattened to spaces). *)
val encode_response : id:string -> response -> string

(** [response_id line] — the first whitespace-delimited token of a
    response line (["-"] for an empty line).  Total. *)
val response_id : string -> string

(** [fields line] — every [k=v] token of a response line in order, for
    the router/probe side: pong payloads, stats reports, answer
    attributes ([cycles], [backend], [via], [model]).  A [msg=] value
    (always last, free text) runs to end of line.  Total. *)
val fields : string -> (string * string) list

(** Parse a [pong] response line back into its payload; [None] when the
    line does not carry the required fields. *)
val pong_of_line : string -> pong option
