type t = { now : unit -> float; sleep : float -> unit }

let monotonic () = { now = Unix.gettimeofday; sleep = Unix.sleepf }

let manual ?(start = 0.0) () =
  let m = Mutex.create () in
  let time = ref start in
  let locked f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  let advance d =
    if d < 0.0 then invalid_arg "Clock.manual: negative advance";
    locked (fun () -> time := !time +. d)
  in
  ({ now = (fun () -> locked (fun () -> !time)); sleep = advance }, advance)
