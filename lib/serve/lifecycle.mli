(** Surrogate lifecycle: online drift detection, background retraining,
    and zero-downtime model hot-swap for the serving runtime.

    A served surrogate goes stale the moment the traffic distribution
    leaves the neighbourhood it was trained on.  This manager keeps one
    surrogate lane honest while it serves:

    - {b shadow scoring}: a deterministic 1-in-[shadow_every] sample of
      surrogate-served requests is re-simulated against a reference
      backend (the mca clone, through its simcache) and the relative
      error recorded;
    - {b drift windows}: errors accumulate into fixed-size windows; a
      window is {e out of band} when its MAPE exceeds [drift_band] or
      its [quantile]-th error percentile exceeds [quantile_band].
      [drift_windows] consecutive out-of-band windows declare drift;
    - {b retraining}: on drift, a bounded reservoir of recently
      shadow-scored traffic (Algorithm R, deterministic RNG) becomes a
      training set and a background domain fine-tunes a {e clone} of
      the serving model ([Engine.retrain_ithemal]);
    - {b registry}: candidate models are persisted into a versioned
      on-disk registry (the {!Dt_difftune.Checkpoint} container: magic,
      version, CRC-32, atomic rename) and {e reloaded} before install —
      what serves is exactly what was proven decodable on disk; a model
      failing the CRC, the config decode, or a self-check forward pass
      is rejected with a structured [Fault.t] and never swapped in;
    - {b hot swap}: installs happen only between batches (the runtime
      calls {!tick} from its drain thread), so in-flight batches finish
      on the old version while new admissions see the new one — zero
      downtime, and every response is labeled with the model version
      that served it;
    - {b canary}: the first [canary_windows] windows after a swap are a
      probation period; an out-of-band window rolls straight back to
      the retained previous version.

    State machine (DESIGN.md section 6g):
    {v stable -> drifting -> retraining -> canary -> stable
                                  |            \-> rollback -> stable v}

    Each model version owns a fresh {!Dt_difftune.Simcache} (memoized
    surrogate predictions are a function of the weights, so they must
    not survive a swap); per-version hit/miss counters surface through
    the backend's [xstats].

    {!Dt_util.Faultsim} sites: [lifecycle.corrupt_model] truncates a
    just-written registry file (the reload must reject it),
    [lifecycle.retrain_crash] kills the background retrain,
    [lifecycle.drift_storm] forces a window out of band (drives the
    whole drift -> retrain -> swap -> canary path on demand). *)

module Model := Dt_surrogate.Model
module Fault := Dt_difftune.Fault

type config = {
  shadow_every : int;
      (** shadow-score every [k]-th surrogate-served request (counter
          based, hence deterministic under any [DIFFTUNE_DOMAINS]) *)
  window : int;  (** shadow scores per drift window *)
  drift_band : float;
      (** window MAPE above this is out of band (relative, e.g. 0.25) *)
  quantile : float;  (** percentile watched per window, in [0,100] *)
  quantile_band : float;
      (** window [quantile]-th relative error above this is out of band *)
  drift_windows : int;
      (** consecutive out-of-band windows before drift is declared *)
  canary_windows : int;
      (** in-band windows a fresh model must survive before its
          predecessor is released; 0 promotes immediately *)
  reservoir_capacity : int;  (** max (block, reference) pairs retained *)
  min_retrain : int;
      (** don't start retraining below this many reservoir samples *)
  sync_retrain : bool;
      (** run retraining inline in {!tick} instead of a background
          domain — deterministic timing for tests and smoke runs *)
  seed : int;  (** reservoir RNG seed *)
}

(** shadow_every 8, window 64, drift_band 0.25, quantile 95 with band
    0.75, drift_windows 3, canary_windows 3, reservoir 512,
    min_retrain 32, async, seed 0. *)
val default_config : config

type state = Stable | Drifting | Retraining | Canary

val state_name : state -> string

(** The versioned on-disk model registry.  Files are
    [<dir>/model_v<version>.ckpt] in the PR 2 checkpoint container
    (atomic rename, CRC-32); payloads carry a format magic, the
    version, the {!Model.config} and every weight matrix. *)
module Registry : sig
  val path : dir:string -> version:int -> string

  (** [save ~dir ~version model] — persist atomically.  Raises on I/O
      failure.  An armed [lifecycle.corrupt_model] hit truncates the
      installed file afterwards (so the paired {!load} must fail). *)
  val save : dir:string -> version:int -> Model.t -> unit

  (** [load ~dir ~version] — decode and rebuild the model, checking
      magic, CRC, version and weight shapes.  All failures are values:
      checkpoint faults pass through, shape/config problems become
      [Fault.Model_rejected]. *)
  val load : dir:string -> version:int -> (Model.t, Fault.t) result
end

type t

(** [create ?clock ?model_dir config ~reference ~retrain ~features
    model] — a lifecycle serving [model] as version 1.

    [reference] is the ground-truth oracle for shadow scoring (cycles
    for a block; typically the mca backend's predict through its
    simcache).  [retrain ~init data] fine-tunes a copy of [init] on
    [data] and returns the candidate (typically
    [Engine.retrain_ithemal]); it runs on a background domain unless
    [config.sync_retrain].  [features] must match the model's training
    features.  With [model_dir] every installed version (including the
    initial one, best effort) is persisted to the registry and
    candidates are validated by reloading from disk.

    Raises [Invalid_argument] on nonsensical config (non-positive
    windows/capacities, bands, or quantile outside [0,100]). *)
val create :
  ?clock:Clock.t ->
  ?model_dir:string ->
  config ->
  reference:(Dt_x86.Block.t -> float) ->
  retrain:(init:Model.t -> (Dt_x86.Block.t * float) array -> Model.t) ->
  features:(Dt_x86.Block.t -> float array) option ->
  Model.t ->
  t

(** The serving backend (named ["surrogate"]): predictions go through
    the {e current} version's model and per-version simcache; scalar
    predictions are serialized on an internal mutex (the model scratch
    workspace is single-caller).  [xstats] reports per-version cache
    hit/miss counters. *)
val backend : t -> Backend.t

val backend_name : string

(** Current serving version (1-based, monotonic except for rollback,
    which re-exposes the previous version). *)
val version : t -> int

val state : t -> state

(** [observe t ~asm ~value] — account one surrogate-served request
    ([value] = the answer's cycles).  Every [shadow_every]-th call
    re-simulates [asm] under [reference], records the relative error,
    feeds the reservoir, and finalizes a drift window when full.  Must
    be called from the drain thread in admission order (that is what
    makes sampling and the reservoir deterministic under any
    [DIFFTUNE_DOMAINS]). *)
val observe : t -> asm:string -> value:float -> unit

(** [tick t] — lifecycle housekeeping at a batch boundary: starts a
    pending retrain (inline when [sync_retrain]), reaps a finished
    background retrain, and validates + installs (or rejects) the
    candidate.  Swaps happen {e only} here, so a runtime calling [tick]
    between batches never mixes versions within a batch. *)
val tick : t -> unit

(** Current reservoir contents, oldest slot first: (canonical block
    text, reference cycles).  For tests. *)
val reservoir_snapshot : t -> (string * float) list

(** Lifecycle counters for the [stats] response (unprefixed keys:
    [state], [version], [swaps], [rollbacks], ...). *)
val stats_pairs : t -> (string * string) list

(** Wait for any in-flight background retrain and discard its result.
    Idempotent; call before dropping the lifecycle. *)
val stop : t -> unit
