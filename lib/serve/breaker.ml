type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  name : string;
  clock : Clock.t;
  threshold : int;
  cooldown : float;
  m : Dt_util.Sync.mutex;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_inflight : bool;
  mutable opened : int;
  mutable half_opened : int;
  mutable closed : int;
  mutable rejected : int;
}

let create ~clock ~threshold ~cooldown name =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 0.0 then invalid_arg "Breaker.create: negative cooldown";
  {
    name;
    clock;
    threshold;
    cooldown;
    m = Dt_util.Sync.mutex "breaker.m";
    st = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    probe_inflight = false;
    opened = 0;
    half_opened = 0;
    closed = 0;
    rejected = 0;
  }

let locked t f = Dt_util.Sync.with_lock t.m f
let name t = t.name
let handle t = t.m

let state t = locked t (fun () -> t.st)

let acquire t =
  locked t (fun () ->
      match t.st with
      | Closed -> true
      | Open ->
          if t.clock.now () -. t.opened_at >= t.cooldown then begin
            t.st <- Half_open;
            t.half_opened <- t.half_opened + 1;
            t.probe_inflight <- true;
            true
          end
          else begin
            t.rejected <- t.rejected + 1;
            false
          end
      | Half_open ->
          if t.probe_inflight then begin
            t.rejected <- t.rejected + 1;
            false
          end
          else begin
            t.probe_inflight <- true;
            true
          end)

let success t =
  locked t (fun () ->
      (match t.st with
      | Half_open ->
          t.st <- Closed;
          t.closed <- t.closed + 1
      | Closed | Open -> ());
      t.probe_inflight <- false;
      t.consecutive_failures <- 0)

let open_locked t =
  t.st <- Open;
  t.opened <- t.opened + 1;
  t.opened_at <- t.clock.now ();
  t.probe_inflight <- false;
  t.consecutive_failures <- 0

let failure t =
  locked t (fun () ->
      match t.st with
      | Half_open -> open_locked t
      | Closed ->
          t.consecutive_failures <- t.consecutive_failures + 1;
          if t.consecutive_failures >= t.threshold then open_locked t
      | Open -> ())

let counters t =
  locked t (fun () -> (t.opened, t.half_opened, t.closed, t.rejected))
