type t = {
  name : string;
  predict : cycle_budget:int -> Dt_x86.Block.t -> float;
}

(* A table that makes the mca simulation crawl: every opcode takes a
   million cycles to produce its result and holds its ports as long.
   Swapped in for one call when the [serve.slow_block] fault site is
   armed, so the deadline watchdog is exercised by a genuinely slow
   simulation rather than a synthetic raise. *)
let pathological (p : Dt_mca.Params.t) =
  {
    p with
    Dt_mca.Params.write_latency =
      Array.map (fun _ -> 1_000_000) p.Dt_mca.Params.write_latency;
    port_map =
      Array.map
        (Array.map (fun c -> if c > 0 then 1_000_000 else 0))
        p.Dt_mca.Params.port_map;
  }

let mca ?params uarch =
  let params =
    match params with Some p -> p | None -> Dt_mca.Params.default uarch
  in
  Dt_mca.Params.validate params;
  let slow = lazy (pathological params) in
  {
    name = "mca";
    predict =
      (fun ~cycle_budget block ->
        let p =
          if Dt_util.Faultsim.fire "serve.slow_block" then Lazy.force slow
          else params
        in
        Dt_mca.Pipeline.timing_unchecked p ~cycle_budget block);
  }

let bound uarch =
  {
    name = "bound";
    predict =
      (fun ~cycle_budget:_ block ->
        let b = Dt_iaca.Iaca.bounds uarch block in
        Float.max b.Dt_iaca.Iaca.frontend
          (Float.max b.Dt_iaca.Iaca.backend b.Dt_iaca.Iaca.latency));
  }

let surrogate ~features model =
  {
    name = "surrogate";
    predict =
      (fun ~cycle_budget:_ block ->
        Dt_difftune.Engine.ithemal_predict ~features model block);
  }

let custom name predict = { name; predict }
