module Simcache = Dt_difftune.Simcache

type t = {
  name : string;
  predict : cycle_budget:int -> Dt_x86.Block.t -> float;
  predict_batch : (cycle_budget:int -> Dt_x86.Block.t array -> float array) option;
  xstats : (unit -> (string * string) list) option;
}

(* A table that makes the mca simulation crawl: every opcode takes a
   million cycles to produce its result and holds its ports as long.
   Swapped in for one call when the [serve.slow_block] fault site is
   armed, so the deadline watchdog is exercised by a genuinely slow
   simulation rather than a synthetic raise. *)
let pathological (p : Dt_mca.Params.t) =
  {
    p with
    Dt_mca.Params.write_latency =
      Array.map (fun _ -> 1_000_000) p.Dt_mca.Params.write_latency;
    port_map =
      Array.map
        (Array.map (fun c -> if c > 0 then 1_000_000 else 0))
        p.Dt_mca.Params.port_map;
  }

(* The serving table is fixed per backend instance, so its digest is a
   constant; only the block digest varies per request. *)
let params_digest (p : Dt_mca.Params.t) =
  Simcache.digest_string
    (String.concat ","
       (string_of_int p.dispatch_width
       :: string_of_int p.reorder_buffer_size
       :: Array.to_list (Array.map string_of_int p.num_micro_ops)
       @ Array.to_list (Array.map string_of_int p.write_latency)
       @ List.concat_map
           (fun rows ->
             Array.to_list (Array.map (Array.fold_left (fun a v ->
                 a ^ "." ^ string_of_int v) "") rows))
           [ p.read_advance; p.port_map ]
       @ Array.to_list (Array.map string_of_bool p.zero_idiom_enabled)))

let mca ?params ?(cache_capacity = 1024) uarch =
  let params =
    match params with Some p -> p | None -> Dt_mca.Params.default uarch
  in
  Dt_mca.Params.validate params;
  let slow = lazy (pathological params) in
  let cache = Simcache.create ~capacity:cache_capacity in
  let table_key = params_digest params in
  {
    name = "mca";
    predict =
      (fun ~cycle_budget block ->
        if Dt_util.Faultsim.fire "serve.slow_block" then
          (* The injected pathological table must reach the real
             deadline watchdog: bypass the memo entirely, and never
             cache its result. *)
          Dt_mca.Pipeline.timing_unchecked (Lazy.force slow) ~cycle_budget
            block
        else
          Simcache.find_or_add cache
            (Simcache.key ~table:table_key ~block:(Simcache.block_key block))
            (fun () ->
              Dt_mca.Pipeline.timing_unchecked params ~cycle_budget block));
    predict_batch = None;
    xstats =
      Some
        (fun () ->
          [
            ("cache_hits", string_of_int (Simcache.hits cache));
            ("cache_misses", string_of_int (Simcache.misses cache));
            ("cache_entries", string_of_int (Simcache.length cache));
          ]);
  }

let bound uarch =
  {
    name = "bound";
    predict =
      (fun ~cycle_budget:_ block ->
        let b = Dt_iaca.Iaca.bounds uarch block in
        Float.max b.Dt_iaca.Iaca.frontend
          (Float.max b.Dt_iaca.Iaca.backend b.Dt_iaca.Iaca.latency));
    predict_batch = None;
    xstats = None;
  }

let surrogate ~features model =
  {
    name = "surrogate";
    predict =
      (fun ~cycle_budget:_ block ->
        Dt_difftune.Engine.ithemal_predict ~features model block);
    predict_batch =
      (* The runtime prefetches each admitted batch with one call on the
         drain thread, so the model's (single-caller) scratch workspace
         is safe here. *)
      Some
        (fun ~cycle_budget:_ blocks ->
          Dt_difftune.Engine.ithemal_predict_batch ~features model blocks);
    xstats =
      (* Compiled-executor counters, the serving analogue of the mca
         backend's simcache numbers: how often predictions replayed a
         sealed plan vs paid an interpreted record pass. *)
      Some
        (fun () ->
          let s = Dt_autodiff.Ad.plan_stats () in
          [
            ("plans_compiled", string_of_int s.Dt_autodiff.Ad.plans_compiled);
            ("plan_hits", string_of_int s.Dt_autodiff.Ad.plan_hits);
            ("plan_misses", string_of_int s.Dt_autodiff.Ad.plan_misses);
            ("plan_replays", string_of_int s.Dt_autodiff.Ad.plan_replays);
            ("fused_ops", string_of_int s.Dt_autodiff.Ad.fused_ops);
            ("slab_bytes", string_of_int s.Dt_autodiff.Ad.slab_bytes);
          ]);
  }

let custom ?batch ?xstats name predict =
  { name; predict; predict_batch = batch; xstats }
