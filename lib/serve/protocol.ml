module Fault = Dt_difftune.Fault

type request =
  | Predict of string
  | Stats
  | Ping
  | Flush
  | Shutdown

let is_space c = c = ' ' || c = '\t'

(* [token s i] — next whitespace-delimited token starting at or after
   [i], with the index one past its end. *)
let token s i =
  let n = String.length s in
  let start = ref i in
  while !start < n && is_space s.[!start] do
    incr start
  done;
  let stop = ref !start in
  while !stop < n && not (is_space s.[!stop]) do
    incr stop
  done;
  if !start = !stop then None
  else Some (String.sub s !start (!stop - !start), !stop)

let rest_after s i =
  let n = String.length s in
  let start = ref i in
  while !start < n && is_space s.[!start] do
    incr start
  done;
  String.trim (String.sub s !start (n - !start))

let malformed id detail = Error (id, Fault.Request_malformed { detail })

let decode line =
  match token line 0 with
  | None -> malformed "-" "empty request"
  | Some (id, after_id) -> (
      match token line after_id with
      | None -> malformed id "missing verb (predict|stats|ping|flush|shutdown)"
      | Some (verb, after_verb) -> (
          let tail = rest_after line after_verb in
          match verb with
          | "predict" ->
              if tail = "" then malformed id "predict needs a block"
              else Ok (id, Predict tail)
          | "stats" | "ping" | "flush" | "shutdown" ->
              if tail <> "" then
                malformed id
                  (Printf.sprintf "unexpected trailing input after %S" verb)
              else
                Ok
                  ( id,
                    match verb with
                    | "stats" -> Stats
                    | "ping" -> Ping
                    | "flush" -> Flush
                    | _ -> Shutdown )
          | verb -> malformed id (Printf.sprintf "unknown verb %S" verb)))

type answer = {
  cycles : float;
  backend : string;
  via : (string * string) list;
  model : string option;
}

type pong = {
  version : int;
  uptime : float;
  model : string option;
  queue_depth : int;
}

type response =
  | Answer of answer
  | Overloaded of { capacity : int }
  | Failed of Fault.t
  | Stat_report of (string * string) list
  | Pong of pong
  | Flushed of int
  | Bye

(* Protocol revision: bumped to 2 when [ping] grew the health-probe
   payload (version/uptime/model/queue_depth) for the cluster router. *)
let proto_version = 2

let kind_of_fault = function
  | Fault.Request_malformed _ -> "malformed"
  | Fault.Block_unparsable _ -> "parse"
  | Fault.Deadline_exceeded _ -> "deadline"
  | Fault.Backend_unavailable _ | Fault.All_backends_failed _ -> "unavailable"
  | Fault.Service_overloaded _ -> "overloaded"
  | Fault.Lock_cycle _ | Fault.Race _ -> "race"
  | Fault.Checkpoint_missing _ | Fault.Checkpoint_corrupt _
  | Fault.Checkpoint_version _ | Fault.Checkpoint_mismatch _
  | Fault.Numeric_divergence _ | Fault.No_training_blocks _
  | Fault.Model_rejected _ | Fault.Retrain_failed _ ->
      "internal"

(* Field values live in a space-separated line: anything that would
   break tokenization becomes '_' (reason slugs), and free text (msg=,
   always last) only has line breaks flattened. *)
let slug s =
  String.map (fun c -> if is_space c || c = ',' || c = '=' || c = ':' then '_' else c) s

let flatten s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let encode_response ~id resp =
  let id = slug id in
  (* The serving-model label rides at the end of answer lines so the
     stable [backend=... via=...] prefix parsers keep working. *)
  let model_suffix = function
    | None -> ""
    | Some v -> " model=" ^ slug v
  in
  match resp with
  | Answer { cycles; backend; via = []; model } ->
      Printf.sprintf "%s ok cycles=%.4f backend=%s%s" id cycles (slug backend)
        (model_suffix model)
  | Answer { cycles; backend; via; model } ->
      Printf.sprintf "%s degraded cycles=%.4f backend=%s via=%s%s" id cycles
        (slug backend)
        (String.concat ","
           (List.map (fun (b, r) -> slug b ^ ":" ^ slug r) via))
        (model_suffix model)
  | Overloaded { capacity } ->
      Printf.sprintf "%s overloaded capacity=%d" id capacity
  | Failed fault ->
      Printf.sprintf "%s error kind=%s msg=%s" id (kind_of_fault fault)
        (flatten (Fault.to_string fault))
  | Stat_report pairs ->
      Printf.sprintf "%s stats %s" id
        (String.concat " "
           (List.map (fun (k, v) -> slug k ^ "=" ^ slug v) pairs))
  | Pong { version; uptime; model; queue_depth } ->
      Printf.sprintf "%s pong version=%d uptime=%.3f model=%s queue_depth=%d"
        id version uptime
        (match model with None -> "-" | Some v -> slug v)
        queue_depth
  | Flushed n -> Printf.sprintf "%s ok flushed=%d" id n
  | Bye -> id ^ " ok shutdown"

(* ---- response-line field access (router / probe side) ----

   The router correlates and inspects shard response lines without a
   full decoder: the id is the first token, and everything informative
   after the status keyword is [k=v] pairs (the encoders above emit
   nothing else).  [msg=] free text is last, so a [k=v] scan stops
   being meaningful there — which is fine: probes and stats never carry
   [msg=] values the router needs. *)

let response_id line =
  match token line 0 with Some (id, _) -> id | None -> "-"

let fields line =
  let n = String.length line in
  let rec go acc i =
    match token line i with
    | None -> List.rev acc
    | Some (tok, j) -> (
        match String.index_opt tok '=' with
        | None | Some 0 -> go acc j
        | Some k ->
            let key = String.sub tok 0 k in
            if String.equal key "msg" then
              (* free text: the value runs to end of line *)
              let vstart = j - (String.length tok - k - 1) in
              List.rev
                ((key, String.trim (String.sub line vstart (n - vstart))) :: acc)
            else
              let v = String.sub tok (k + 1) (String.length tok - k - 1) in
              go ((key, v) :: acc) j)
  in
  go [] 0

let pong_of_line line =
  let fs = fields line in
  let int_f k = Option.bind (List.assoc_opt k fs) int_of_string_opt in
  let float_f k = Option.bind (List.assoc_opt k fs) float_of_string_opt in
  match (int_f "version", float_f "uptime", int_f "queue_depth") with
  | Some version, Some uptime, Some queue_depth ->
      let model =
        match List.assoc_opt "model" fs with
        | None | Some "-" -> None
        | Some v -> Some v
      in
      Some { version; uptime; model; queue_depth }
  | _ -> None
