module Fault = Dt_difftune.Fault

type request =
  | Predict of string
  | Stats
  | Ping
  | Flush
  | Shutdown

let is_space c = c = ' ' || c = '\t'

(* [token s i] — next whitespace-delimited token starting at or after
   [i], with the index one past its end. *)
let token s i =
  let n = String.length s in
  let start = ref i in
  while !start < n && is_space s.[!start] do
    incr start
  done;
  let stop = ref !start in
  while !stop < n && not (is_space s.[!stop]) do
    incr stop
  done;
  if !start = !stop then None
  else Some (String.sub s !start (!stop - !start), !stop)

let rest_after s i =
  let n = String.length s in
  let start = ref i in
  while !start < n && is_space s.[!start] do
    incr start
  done;
  String.trim (String.sub s !start (n - !start))

let malformed id detail = Error (id, Fault.Request_malformed { detail })

let decode line =
  match token line 0 with
  | None -> malformed "-" "empty request"
  | Some (id, after_id) -> (
      match token line after_id with
      | None -> malformed id "missing verb (predict|stats|ping|flush|shutdown)"
      | Some (verb, after_verb) -> (
          let tail = rest_after line after_verb in
          match verb with
          | "predict" ->
              if tail = "" then malformed id "predict needs a block"
              else Ok (id, Predict tail)
          | "stats" | "ping" | "flush" | "shutdown" ->
              if tail <> "" then
                malformed id
                  (Printf.sprintf "unexpected trailing input after %S" verb)
              else
                Ok
                  ( id,
                    match verb with
                    | "stats" -> Stats
                    | "ping" -> Ping
                    | "flush" -> Flush
                    | _ -> Shutdown )
          | verb -> malformed id (Printf.sprintf "unknown verb %S" verb)))

type answer = {
  cycles : float;
  backend : string;
  via : (string * string) list;
  model : string option;
}

type response =
  | Answer of answer
  | Overloaded of { capacity : int }
  | Failed of Fault.t
  | Stat_report of (string * string) list
  | Pong
  | Flushed of int
  | Bye

let kind_of_fault = function
  | Fault.Request_malformed _ -> "malformed"
  | Fault.Block_unparsable _ -> "parse"
  | Fault.Deadline_exceeded _ -> "deadline"
  | Fault.Backend_unavailable _ | Fault.All_backends_failed _ -> "unavailable"
  | Fault.Service_overloaded _ -> "overloaded"
  | Fault.Lock_cycle _ | Fault.Race _ -> "race"
  | Fault.Checkpoint_missing _ | Fault.Checkpoint_corrupt _
  | Fault.Checkpoint_version _ | Fault.Checkpoint_mismatch _
  | Fault.Numeric_divergence _ | Fault.No_training_blocks _
  | Fault.Model_rejected _ | Fault.Retrain_failed _ ->
      "internal"

(* Field values live in a space-separated line: anything that would
   break tokenization becomes '_' (reason slugs), and free text (msg=,
   always last) only has line breaks flattened. *)
let slug s =
  String.map (fun c -> if is_space c || c = ',' || c = '=' || c = ':' then '_' else c) s

let flatten s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let encode_response ~id resp =
  let id = slug id in
  (* The serving-model label rides at the end of answer lines so the
     stable [backend=... via=...] prefix parsers keep working. *)
  let model_suffix = function
    | None -> ""
    | Some v -> " model=" ^ slug v
  in
  match resp with
  | Answer { cycles; backend; via = []; model } ->
      Printf.sprintf "%s ok cycles=%.4f backend=%s%s" id cycles (slug backend)
        (model_suffix model)
  | Answer { cycles; backend; via; model } ->
      Printf.sprintf "%s degraded cycles=%.4f backend=%s via=%s%s" id cycles
        (slug backend)
        (String.concat ","
           (List.map (fun (b, r) -> slug b ^ ":" ^ slug r) via))
        (model_suffix model)
  | Overloaded { capacity } ->
      Printf.sprintf "%s overloaded capacity=%d" id capacity
  | Failed fault ->
      Printf.sprintf "%s error kind=%s msg=%s" id (kind_of_fault fault)
        (flatten (Fault.to_string fault))
  | Stat_report pairs ->
      Printf.sprintf "%s stats %s" id
        (String.concat " "
           (List.map (fun (k, v) -> slug k ^ "=" ^ slug v) pairs))
  | Pong -> id ^ " pong"
  | Flushed n -> Printf.sprintf "%s ok flushed=%d" id n
  | Bye -> id ^ " ok shutdown"
