(** The in-process prediction-service runtime.

    Composes the pieces of the resilience story around a degradation
    chain of {!Backend.t}s:

    - {b bounded admission queue}: {!submit} decodes a protocol line and
      either answers immediately (control verbs, malformed input,
      shedding) or queues the prediction; a full queue sheds with a
      structured [overloaded] response — it never blocks and never
      drops.
    - {b batch scheduling}: {!drain} takes up to [batch] queued requests
      and evaluates them across the existing {!Dt_util.Pool} domain
      pool, answering in admission order (deterministic with a pool of
      size 1).
    - {b deadlines}: every mca-style backend call carries
      [cycle_budget]; an overrun surfaces as
      [Dt_mca.Pipeline.Budget_exceeded] and becomes a labeled
      [deadline] reason — the worker is never wedged.
    - {b retries}: transient worker faults (anything except a deadline)
      are retried up to [max_retries] times with exponential backoff
      and deterministic per-request jitter, sleeping on the injected
      {!Clock.t}.
    - {b circuit breakers}: one {!Breaker.t} per backend; an open
      breaker skips the backend (reason [breaker_open]) instead of
      burning its retry budget.
    - {b graceful degradation}: the first backend to produce a finite
      value serves the response; responses served by a later backend
      are labeled [degraded] with the full (backend, reason) chain.

    Fault sites ({!Dt_util.Faultsim}): [serve.malformed_input] corrupts
    an incoming line at admission, [serve.worker_crash] raises inside a
    backend attempt, [serve.slow_block] (in {!Backend.mca}) forces a
    genuine deadline overrun.

    Exactly-once accounting: every submitted line produces exactly one
    call of its [respond] callback.  Callbacks run on the submitting
    thread (inside {!submit} or {!drain}), never on pool workers. *)

type config = {
  queue_capacity : int;  (** admission bound; beyond it requests shed *)
  batch : int;           (** max requests evaluated per {!drain} *)
  cycle_budget : int;    (** per-request simulated-cycle deadline *)
  max_retries : int;     (** extra attempts after a transient fault *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_cap : float;   (** backoff ceiling, seconds *)
  jitter : float;        (** uniform multiplicative jitter fraction *)
  breaker_threshold : int;   (** consecutive failures to open *)
  breaker_cooldown : float;  (** open duration before half-open, s *)
  seed : int;            (** jitter randomness (deterministic) *)
}

val default_config : config

type t

(** [create ?pool ?clock ?lifecycle config backends] — [backends] is
    the degradation chain, primary first (must be non-empty).  An
    explicit [pool] is borrowed (caller keeps ownership); otherwise one
    is created (honouring [DIFFTUNE_DOMAINS]) and owned.  Default
    clock: {!Clock.monotonic}.

    With [lifecycle] (whose {!Lifecycle.backend} should be one of the
    [backends], normally the primary), the runtime becomes
    lifecycle-aware: answers served by the surrogate lane carry the
    serving model version ([model=v<n>]); after each batch's responses
    are out, those answers are shadow-scored in admission order and
    {!Lifecycle.tick} runs — so drift detection, background retraining
    and hot-swaps all happen at batch boundaries, never inside one
    (an admitted batch is always served and labeled by a single
    version).  {!shutdown} stops the lifecycle. *)
val create :
  ?pool:Dt_util.Pool.t -> ?clock:Clock.t -> ?lifecycle:Lifecycle.t ->
  config -> Backend.t list -> t

val config : t -> config

(** [submit t ~line ~respond] — admit one protocol line.  [respond]
    receives exactly one response line, either immediately (control
    verbs, malformed input, overload shedding, [flush]/[shutdown]
    after a forced drain) or during a later {!drain}.  [`Shutdown]
    tells the server loop to stop after this response. *)
val submit :
  t -> line:string -> respond:(string -> unit) -> [ `Ok | `Shutdown ]

(** Queued (admitted, unanswered) predictions. *)
val pending : t -> int

(** Evaluate one batch; no-op on an empty queue. *)
val drain : t -> unit

(** Drain until the queue is empty; returns how many were answered. *)
val drain_all : t -> int

(** The [stats] key/value pairs (also available via a [stats] request). *)
val stats_pairs : t -> (string * string) list

(** The health-probe payload served on a [ping] request: protocol
    version, uptime on the runtime's clock, serving model version (when
    a lifecycle manages the surrogate lane) and current queue depth. *)
val ping_payload : t -> Protocol.pong

(** Breaker of the named backend, for tests. *)
val breaker : t -> string -> Breaker.t option

(** Drains the queue and joins the pool if owned.  Idempotent. *)
val shutdown : t -> unit
