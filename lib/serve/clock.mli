(** Injectable time source for the serving runtime.

    Every time-dependent decision in [Dt_serve] — circuit-breaker
    cooldowns, retry backoff sleeps — goes through a {!t} so tests can
    drive the whole state machine with a deterministic virtual clock
    instead of real sleeps.  Production code uses {!monotonic}; tests use
    {!manual}, whose [sleep] advances virtual time instantly. *)

type t = {
  now : unit -> float;  (** seconds; monotonic within one clock *)
  sleep : float -> unit;
}

(** Wall-clock time and real sleeping ([Unix.gettimeofday] /
    [Unix.sleepf]). *)
val monotonic : unit -> t

(** [manual ?start ()] — a virtual clock starting at [start] (default 0).
    [sleep d] advances the clock by [d] and returns immediately; the
    returned function advances it explicitly (e.g. to step past a breaker
    cooldown).  Thread-safe. *)
val manual : ?start:float -> unit -> t * (float -> unit)
