(** Transport front-ends for {!Runtime}: newline-delimited protocol over
    stdin/stdout or a Unix-domain socket.

    Both loops share the runtime's semantics: a line is admitted with
    {!Runtime.submit} as soon as it arrives; queued predictions are
    evaluated in admission order whenever a full batch has accumulated
    (stdio) or the socket goes briefly idle, and always at end of input.
    A [shutdown] request drains, acknowledges, and stops the loop.

    {b Graceful drain}: both loops install [SIGTERM]/[SIGINT] handlers
    (saved and restored on exit) that flip a flag; at the next loop
    iteration the server stops admitting, answers every already-admitted
    request on its still-open connection, emits one final stats line via
    {!Dt_util.Log.status}, and returns normally — so a supervised stop
    exits 0 without dropping accepted work.  In socket mode the flag is
    seen within one select tick (≤ 20 ms); in stdio mode at the next
    input line or EOF.

    {b Cluster fault sites} ({!Dt_util.Faultsim}), armed per shard via a
    fleet spec: [cluster.shard_crash] kills the process abruptly
    ([Unix._exit 70], stale socket left behind), [cluster.net_partition]
    keeps the daemon accepting and reading but never replying from the
    armed hit on, [cluster.slow_shard] stalls one request for
    [DIFFTUNE_SLOW_SHARD_S] seconds (default 0.75) so its reply lands
    after the router has failed over. *)

(** [with_drain_signals f] — run [f] with the [SIGTERM]/[SIGINT] drain
    handlers installed (restored afterwards).  Exposed so other serving
    loops — the cluster router ({!Dt_cluster}) — share the same drain
    discipline. *)
val with_drain_signals : (unit -> 'a) -> 'a

(** Whether a drain signal has arrived since {!with_drain_signals}
    (re)installed the handlers. *)
val drain_pending : unit -> bool

(** [serve_channels rt ic oc] — serve until EOF on [ic], a [shutdown]
    request, or a drain signal.  Responses are written (and flushed) to
    [oc] one line each. *)
val serve_channels : Runtime.t -> in_channel -> out_channel -> unit

(** [serve_socket rt ~path] — bind a Unix-domain socket at [path]
    (replacing a stale file), accept any number of concurrent clients in
    one select loop, and serve until some client sends [shutdown] or a
    drain signal arrives.  Responses go to the client that issued the
    request.  The socket file is removed on exit; [SIGPIPE] is ignored
    for the duration. *)
val serve_socket : Runtime.t -> path:string -> unit
