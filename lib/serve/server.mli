(** Transport front-ends for {!Runtime}: newline-delimited protocol over
    stdin/stdout or a Unix-domain socket.

    Both loops share the runtime's semantics: a line is admitted with
    {!Runtime.submit} as soon as it arrives; queued predictions are
    evaluated in admission order whenever a full batch has accumulated
    (stdio) or the socket goes briefly idle, and always at end of input.
    A [shutdown] request drains, acknowledges, and stops the loop. *)

(** [serve_channels rt ic oc] — serve until EOF on [ic] or a [shutdown]
    request.  Responses are written (and flushed) to [oc] one line
    each. *)
val serve_channels : Runtime.t -> in_channel -> out_channel -> unit

(** [serve_socket rt ~path] — bind a Unix-domain socket at [path]
    (replacing a stale file), accept any number of concurrent clients in
    one select loop, and serve until some client sends [shutdown].
    Responses go to the client that issued the request.  The socket file
    is removed on exit; [SIGPIPE] is ignored for the duration. *)
val serve_socket : Runtime.t -> path:string -> unit
