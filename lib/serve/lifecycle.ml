module Fault = Dt_difftune.Fault
module Checkpoint = Dt_difftune.Checkpoint
module Simcache = Dt_difftune.Simcache
module Engine = Dt_difftune.Engine
module Model = Dt_surrogate.Model
module Rng = Dt_util.Rng
module Stats = Dt_util.Stats
module Faultsim = Dt_util.Faultsim
module Log = Dt_util.Log
module Sync = Dt_util.Sync

type config = {
  shadow_every : int;
  window : int;
  drift_band : float;
  quantile : float;
  quantile_band : float;
  drift_windows : int;
  canary_windows : int;
  reservoir_capacity : int;
  min_retrain : int;
  sync_retrain : bool;
  seed : int;
}

let default_config =
  {
    shadow_every = 8;
    window = 64;
    drift_band = 0.25;
    quantile = 95.0;
    quantile_band = 0.75;
    drift_windows = 3;
    canary_windows = 3;
    reservoir_capacity = 512;
    min_retrain = 32;
    sync_retrain = false;
    seed = 0;
  }

type state = Stable | Drifting | Retraining | Canary

let state_name = function
  | Stable -> "stable"
  | Drifting -> "drifting"
  | Retraining -> "retraining"
  | Canary -> "canary"

let backend_name = "surrogate"

(* ---- versioned on-disk registry ---- *)

module Registry = struct
  let magic = "dt-surrogate-model-v1"
  let name version = Printf.sprintf "model_v%d" version
  let path ~dir ~version = Checkpoint.path ~dir ~name:(name version)

  let enc_config b (c : Model.config) =
    let module E = Checkpoint.Enc in
    E.int b c.embed_dim;
    E.int b c.token_hidden;
    E.int b c.instr_hidden;
    E.int b c.token_layers;
    E.int b c.instr_layers;
    E.bool b c.with_params;
    E.int b c.per_instr_params;
    E.int b c.global_params;
    E.int b c.feature_width;
    E.int b c.head_hidden

  let dec_config d : Model.config =
    let module D = Checkpoint.Dec in
    let embed_dim = D.int d in
    let token_hidden = D.int d in
    let instr_hidden = D.int d in
    let token_layers = D.int d in
    let instr_layers = D.int d in
    let with_params = D.bool d in
    let per_instr_params = D.int d in
    let global_params = D.int d in
    let feature_width = D.int d in
    let head_hidden = D.int d in
    {
      embed_dim;
      token_hidden;
      instr_hidden;
      token_layers;
      instr_layers;
      with_params;
      per_instr_params;
      global_params;
      feature_width;
      head_hidden;
    }

  let save ~dir ~version model =
    Checkpoint.save ~dir ~name:(name version) (fun b ->
        let module E = Checkpoint.Enc in
        E.string b magic;
        E.int b version;
        enc_config b (Model.config model);
        E.list b
          (fun b (wname, rows, cols, data) ->
            E.string b wname;
            E.int b rows;
            E.int b cols;
            E.float_array b data)
          (Dt_nn.Nn.Store.export_values (Model.store model)));
    (* Mirror of [ckpt.truncate], scoped to the model registry: tear the
       file that was just atomically installed, so the validating reload
       must catch it. *)
    if Faultsim.fire "lifecycle.corrupt_model" then begin
      let p = path ~dir ~version in
      let full = In_channel.with_open_bin p In_channel.input_all in
      Out_channel.with_open_bin p (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)))
    end

  let load ~dir ~version =
    let payload =
      Checkpoint.load ~dir ~name:(name version) (fun d ->
          let module D = Checkpoint.Dec in
          let m = D.string d in
          if not (String.equal m magic) then
            raise (D.Corrupt (Printf.sprintf "bad model magic %S" m));
          let v = D.int d in
          if v <> version then
            raise
              (D.Corrupt
                 (Printf.sprintf "model version %d where %d was expected" v
                    version));
          let cfg = dec_config d in
          let weights =
            D.list d (fun d ->
                let wname = D.string d in
                let rows = D.int d in
                let cols = D.int d in
                let data = D.float_array d in
                (wname, rows, cols, data))
          in
          (cfg, weights))
    in
    match payload with
    | Error f -> Error f
    | Ok (cfg, weights) -> (
        let model = Model.create ~config:cfg (Rng.create 0) in
        match Dt_nn.Nn.Store.import_values (Model.store model) weights with
        | () -> Ok model
        | exception Invalid_argument reason ->
            Error (Fault.Model_rejected { version; reason }))
end

(* ---- per-version serving epoch ---- *)

(* Cached surrogate timings are a function of the weights, so each model
   version owns a fresh cache; the table half of the cache key is the
   version label, which also keeps the hit/miss counters per version. *)
type epoch = { eversion : int; emodel : Model.t; ecache : Simcache.t }

let make_epoch version model =
  { eversion = version; emodel = model; ecache = Simcache.create ~capacity:1024 }

type job = {
  jversion : int;
  jdomain : unit Domain.t option;
  jresult : (Model.t, string) result option ref;
  jmutex : Sync.mutex;
}

type t = {
  cfg : config;
  clock : Clock.t;
  model_dir : string option;
  reference : Dt_x86.Block.t -> float;
  retrain : init:Model.t -> (Dt_x86.Block.t * float) array -> Model.t;
  features : (Dt_x86.Block.t -> float array) option;
  pm : Sync.mutex;  (** serializes scalar predictions on the scratch ctx *)
  downer : Sync.owner;
      (** drain-thread confinement stamp for the window/reservoir state *)
  current : epoch Atomic.t;
  mutable previous : epoch option;  (** canary fallback *)
  mutable retired : (int * Simcache.t) list;  (** stats of old versions *)
  mutable next_version : int;
  mutable st : state;
  (* drift-window accumulation (drain thread only) *)
  rels : float array;
  mutable wfill : int;
  mutable consecutive : int;
  mutable canary_left : int;
  mutable want_retrain : bool;
  mutable windows : int;
  mutable windows_out : int;
  mutable last_mape : float;
  mutable last_q : float;
  (* reservoir (Algorithm R; drain thread only) *)
  res : (Dt_x86.Block.t * float) option array;
  mutable res_size : int;
  mutable res_seen : int;
  rrng : Rng.t;
  (* counters *)
  mutable observed : int;
  mutable shadow_scored : int;
  mutable shadow_errors : int;
  mutable retrains_started : int;
  mutable retrains_failed : int;
  mutable models_rejected : int;
  mutable swaps : int;
  mutable rollbacks : int;
  mutable last_swap_pause : float;
  mutable job : job option;
  mutable stopped : bool;
}

let validate cfg =
  let bad fmt = Printf.ksprintf invalid_arg ("Lifecycle.create: " ^^ fmt) in
  if cfg.shadow_every < 1 then bad "shadow_every %d < 1" cfg.shadow_every;
  if cfg.window < 1 then bad "window %d < 1" cfg.window;
  if cfg.drift_band <= 0.0 then bad "drift_band %g <= 0" cfg.drift_band;
  if cfg.quantile < 0.0 || cfg.quantile > 100.0 then
    bad "quantile %g outside [0,100]" cfg.quantile;
  if cfg.quantile_band <= 0.0 then bad "quantile_band %g <= 0" cfg.quantile_band;
  if cfg.drift_windows < 1 then bad "drift_windows %d < 1" cfg.drift_windows;
  if cfg.canary_windows < 0 then bad "canary_windows %d < 0" cfg.canary_windows;
  if cfg.reservoir_capacity < 1 then
    bad "reservoir_capacity %d < 1" cfg.reservoir_capacity;
  if cfg.min_retrain < 1 then bad "min_retrain %d < 1" cfg.min_retrain

let create ?clock ?model_dir cfg ~reference ~retrain ~features model =
  validate cfg;
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  let t =
    {
      cfg;
      clock;
      model_dir;
      reference;
      retrain;
      features;
      pm = Sync.mutex "lifecycle.pm";
      downer = Sync.owner "lifecycle.drain";
      current = Atomic.make (make_epoch 1 model);
      previous = None;
      retired = [];
      next_version = 2;
      st = Stable;
      rels = Array.make cfg.window 0.0;
      wfill = 0;
      consecutive = 0;
      canary_left = 0;
      want_retrain = false;
      windows = 0;
      windows_out = 0;
      last_mape = 0.0;
      last_q = 0.0;
      res = Array.make cfg.reservoir_capacity None;
      res_size = 0;
      res_seen = 0;
      rrng = Rng.create (cfg.seed lxor 0x2f61d9);
      observed = 0;
      shadow_scored = 0;
      shadow_errors = 0;
      retrains_started = 0;
      retrains_failed = 0;
      models_rejected = 0;
      swaps = 0;
      rollbacks = 0;
      last_swap_pause = 0.0;
      job = None;
      stopped = false;
    }
  in
  (* Best effort: the registry should hold every version that ever
     served, including the initial one.  Serving does not depend on this
     write succeeding. *)
  (match model_dir with
  | None -> ()
  | Some dir -> (
      match Registry.save ~dir ~version:1 model with
      | () -> ()
      | exception e ->
          Log.warn "lifecycle: could not persist initial model v1: %s"
            (Printexc.to_string e)));
  t

let version t = (Atomic.get t.current).eversion
let state t = t.st

let locked m f = Sync.with_lock m f

(* ---- serving backend ---- *)

let cache_key epoch block =
  Simcache.key
    ~table:(Printf.sprintf "model:v%d" epoch.eversion)
    ~block:(Simcache.block_key block)

let predict t ~cycle_budget:_ block =
  let e = Atomic.get t.current in
  Simcache.find_or_add e.ecache (cache_key e block) (fun () ->
      locked t.pm (fun () ->
          Engine.ithemal_predict ~features:t.features e.emodel block))

let predict_batch t ~cycle_budget:_ blocks =
  let e = Atomic.get t.current in
  let n = Array.length blocks in
  let out = Array.make n Float.nan in
  let miss = ref [] in
  for i = n - 1 downto 0 do
    match Simcache.find e.ecache (cache_key e blocks.(i)) with
    | Some v -> out.(i) <- v
    | None -> miss := i :: !miss
  done;
  let miss = Array.of_list !miss in
  if Array.length miss > 0 then begin
    let vals =
      locked t.pm (fun () ->
          Engine.ithemal_predict_batch ~features:t.features e.emodel
            (Array.map (fun i -> blocks.(i)) miss))
    in
    Array.iteri
      (fun j i ->
        out.(i) <- vals.(j);
        if Float.is_finite vals.(j) then
          Simcache.add e.ecache (cache_key e blocks.(i)) vals.(j))
      miss
  end;
  out

let cache_pairs t =
  let one (v, cache) =
    [
      (Printf.sprintf "cache_hits.v%d" v, string_of_int (Simcache.hits cache));
      ( Printf.sprintf "cache_misses.v%d" v,
        string_of_int (Simcache.misses cache) );
    ]
  in
  let epochs =
    let cur = Atomic.get t.current in
    ((cur.eversion, cur.ecache)
     :: (match t.previous with
        | Some p -> [ (p.eversion, p.ecache) ]
        | None -> []))
    @ t.retired
  in
  List.concat_map one (List.sort (fun (a, _) (b, _) -> compare a b) epochs)

let backend t =
  Backend.custom
    ~batch:(predict_batch t)
    ~xstats:(fun () -> cache_pairs t)
    backend_name (predict t)

(* ---- reservoir (Algorithm R) ---- *)

let reservoir_add t block target =
  t.res_seen <- t.res_seen + 1;
  if t.res_size < t.cfg.reservoir_capacity then begin
    t.res.(t.res_size) <- Some (block, target);
    t.res_size <- t.res_size + 1
  end
  else begin
    let j = Rng.int t.rrng t.res_seen in
    if j < t.cfg.reservoir_capacity then t.res.(j) <- Some (block, target)
  end

let reservoir_data t =
  Array.init t.res_size (fun i ->
      match t.res.(i) with
      | Some pair -> pair
      | None -> assert false)

let reservoir_snapshot t =
  Array.to_list
    (Array.map
       (fun (block, target) -> (Dt_x86.Block.to_string block, target))
       (reservoir_data t))

(* ---- swap / rollback ---- *)

let retire t epoch =
  t.retired <- (epoch.eversion, epoch.ecache) :: t.retired;
  (* Bound the stats list; versions churn but memory must not. *)
  if List.length t.retired > 8 then
    t.retired <- List.filteri (fun i _ -> i < 8) t.retired

let reset_window t =
  t.wfill <- 0;
  t.consecutive <- 0

let install t v candidate_result =
  let t0 = t.clock.Clock.now () in
  let validated =
    match candidate_result with
    | Error fault -> Error fault
    | Ok model -> (
        match t.model_dir with
        | None -> Ok model
        | Some dir -> (
            (* Persist, then serve what the disk proves decodable: the
               reload exercises magic, CRC and shape checks on the very
               bytes a restart would read. *)
            match Registry.save ~dir ~version:v model with
            | () -> Registry.load ~dir ~version:v
            | exception e ->
                Error
                  (Fault.Model_rejected
                     { version = v; reason = Printexc.to_string e })))
  in
  let self_checked =
    match validated with
    | Error _ as e -> e
    | Ok model -> (
        (* Never swap in a model that cannot produce a sane prediction:
           one forward pass on a probe block must be finite and
           non-negative. *)
        let probe = Dt_x86.Block.parse "addq %rax, %rbx" in
        match Engine.ithemal_predict ~features:t.features model probe with
        | p when Float.is_finite p && p >= 0.0 -> Ok model
        | p ->
            Error
              (Fault.Model_rejected
                 {
                   version = v;
                   reason = Printf.sprintf "self-check predicted %g" p;
                 })
        | exception e ->
            Error
              (Fault.Model_rejected
                 {
                   version = v;
                   reason = "self-check raised " ^ Printexc.to_string e;
                 }))
  in
  match self_checked with
  | Error fault ->
      t.models_rejected <- t.models_rejected + 1;
      Log.warn "lifecycle: %s" (Fault.to_string fault);
      t.st <- Stable;
      reset_window t
  | Ok model ->
      let prev = Atomic.get t.current in
      Atomic.set t.current (make_epoch v model);
      t.swaps <- t.swaps + 1;
      reset_window t;
      if t.cfg.canary_windows > 0 then begin
        t.previous <- Some prev;
        t.canary_left <- t.cfg.canary_windows;
        t.st <- Canary
      end
      else begin
        retire t prev;
        t.previous <- None;
        t.st <- Stable
      end;
      t.last_swap_pause <- t.clock.Clock.now () -. t0;
      Log.status "lifecycle: model v%d installed (serving; canary %d windows)"
        v t.cfg.canary_windows

let rollback t =
  match t.previous with
  | None ->
      t.st <- Stable;
      reset_window t
  | Some prev ->
      let bad = Atomic.get t.current in
      Atomic.set t.current prev;
      retire t bad;
      t.previous <- None;
      t.rollbacks <- t.rollbacks + 1;
      t.st <- Stable;
      reset_window t;
      Log.warn "lifecycle: model v%d regressed in canary; rolled back to v%d"
        bad.eversion prev.eversion

let promote t =
  (match t.previous with
  | Some p ->
      retire t p;
      Log.status "lifecycle: model v%d survived canary; v%d released"
        (Atomic.get t.current).eversion p.eversion
  | None -> ());
  t.previous <- None;
  t.st <- Stable;
  t.consecutive <- 0

(* ---- drift windows ---- *)

let finalize_window t =
  let rels = Array.sub t.rels 0 t.wfill in
  t.wfill <- 0;
  let mape = Stats.mean rels in
  let q = Stats.percentile rels t.cfg.quantile in
  t.last_mape <- mape;
  t.last_q <- q;
  t.windows <- t.windows + 1;
  let stormed = Faultsim.fire "lifecycle.drift_storm" in
  let out = stormed || mape > t.cfg.drift_band || q > t.cfg.quantile_band in
  if out then t.windows_out <- t.windows_out + 1;
  match t.st with
  | Canary ->
      if out then rollback t
      else begin
        t.canary_left <- t.canary_left - 1;
        if t.canary_left <= 0 then promote t
      end
  | Retraining ->
      (* Drift accounting is paused while a candidate is in flight; the
         window stats keep rolling for observability. *)
      ()
  | Stable | Drifting ->
      if out then begin
        t.consecutive <- t.consecutive + 1;
        t.st <- Drifting;
        if t.consecutive >= t.cfg.drift_windows then t.want_retrain <- true
      end
      else begin
        t.consecutive <- 0;
        t.want_retrain <- false;
        t.st <- Stable
      end

(* The window/reservoir/counter state below is drain-thread confined by
   design (no lock): [with_owner] makes that confinement checkable —
   under DIFFTUNE_RACECHECK=1 a second domain entering while the drain
   thread is inside raises Sync.Race naming both sites. *)
let observe t ~asm ~value =
  Sync.with_owner t.downer ~site:"Lifecycle.observe" @@ fun () ->
  t.observed <- t.observed + 1;
  if t.observed mod t.cfg.shadow_every = 0 then begin
    match Dt_x86.Parser.block_result asm with
    | Error _ | Ok [] -> t.shadow_errors <- t.shadow_errors + 1
    | Ok (_ :: _ as instrs) -> (
        let block = Dt_x86.Block.of_list instrs in
        match t.reference block with
        | exception e ->
            t.shadow_errors <- t.shadow_errors + 1;
            Log.warn "lifecycle: shadow reference failed: %s"
              (Printexc.to_string e)
        | rv ->
            if Float.is_finite rv && rv > 0.0 then begin
              t.shadow_scored <- t.shadow_scored + 1;
              let rel = Float.abs (value -. rv) /. rv in
              t.rels.(t.wfill) <- rel;
              t.wfill <- t.wfill + 1;
              reservoir_add t block rv;
              if t.wfill >= t.cfg.window then finalize_window t
            end
            else t.shadow_errors <- t.shadow_errors + 1)
  end

(* ---- retraining ---- *)

let clone_model m =
  let c = Model.create ~config:(Model.config m) (Rng.create 0) in
  Dt_nn.Nn.Store.copy_values ~src:(Model.store m) ~dst:(Model.store c);
  c

let retrain_finished t v result =
  match result with
  | Error detail ->
      t.retrains_failed <- t.retrains_failed + 1;
      Log.warn "lifecycle: %s"
        (Fault.to_string (Fault.Retrain_failed { version = v; detail }));
      t.st <- Stable;
      reset_window t
  | Ok model -> install t v (Ok model)

let start_retrain t =
  t.want_retrain <- false;
  t.retrains_started <- t.retrains_started + 1;
  let v = t.next_version in
  t.next_version <- t.next_version + 1;
  let data = reservoir_data t in
  (* Clone synchronously: the background domain must never touch the
     serving model's scratch workspace. *)
  let init = clone_model (Atomic.get t.current).emodel in
  t.st <- Retraining;
  t.consecutive <- 0;
  let work () =
    Faultsim.fire_exn "lifecycle.retrain_crash";
    t.retrain ~init data
  in
  Log.status "lifecycle: drift confirmed; retraining model v%d on %d samples"
    v (Array.length data);
  if t.cfg.sync_retrain then
    retrain_finished t v
      (match work () with
      | model -> Ok model
      | exception e -> Error (Printexc.to_string e))
  else begin
    let jresult = ref None in
    let jmutex = Sync.mutex "lifecycle.job" in
    let d =
      Domain.spawn (fun () ->
          let r =
            match work () with
            | model -> Ok model
            | exception e -> Error (Printexc.to_string e)
          in
          locked jmutex (fun () -> jresult := Some r))
    in
    t.job <- Some { jversion = v; jdomain = Some d; jresult; jmutex }
  end

let tick t =
  Sync.with_owner t.downer ~site:"Lifecycle.tick" @@ fun () ->
  (match t.job with
  | None -> ()
  | Some j -> (
      match locked j.jmutex (fun () -> !(j.jresult)) with
      | None -> ()
      | Some r ->
          (match j.jdomain with Some d -> Domain.join d | None -> ());
          t.job <- None;
          retrain_finished t j.jversion r));
  if
    t.want_retrain
    && Option.is_none t.job
    && (match t.st with Stable | Drifting -> true | Retraining | Canary -> false)
  then begin
    if t.res_size >= t.cfg.min_retrain then start_retrain t
    else begin
      (* Not enough harvested traffic yet; stay drifting and try again
         at the next window. *)
      t.want_retrain <- false;
      Log.warn
        "lifecycle: drift confirmed but reservoir has %d/%d samples; waiting"
        t.res_size t.cfg.min_retrain
    end
  end

let stats_pairs t =
  let f2 x = Printf.sprintf "%.4f" x in
  [
    ("state", state_name t.st);
    ("version", string_of_int (version t));
    ("versions_created", string_of_int (t.next_version - 1));
    ("swaps", string_of_int t.swaps);
    ("rollbacks", string_of_int t.rollbacks);
    ("retrains_started", string_of_int t.retrains_started);
    ("retrains_failed", string_of_int t.retrains_failed);
    ("models_rejected", string_of_int t.models_rejected);
    ("observed", string_of_int t.observed);
    ("shadow_scored", string_of_int t.shadow_scored);
    ("shadow_errors", string_of_int t.shadow_errors);
    ("windows", string_of_int t.windows);
    ("windows_out_of_band", string_of_int t.windows_out);
    ("consecutive_out", string_of_int t.consecutive);
    ("window_fill", string_of_int t.wfill);
    ("last_window_mape", f2 t.last_mape);
    ("last_window_q", f2 t.last_q);
    ("reservoir_size", string_of_int t.res_size);
    ("reservoir_seen", string_of_int t.res_seen);
    ("canary_left", string_of_int t.canary_left);
    ("swap_pause_ms", f2 (t.last_swap_pause *. 1000.0));
  ]

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.job with
    | None -> ()
    | Some j ->
        (match j.jdomain with
        | Some d ->
            Log.status "lifecycle: waiting for in-flight retrain of v%d"
              j.jversion;
            Domain.join d
        | None -> ());
        t.job <- None
  end
