module Faultsim = Dt_util.Faultsim

(* ---- graceful drain ----

   SIGTERM/SIGINT set a flag (async-signal-safe: the handler only
   stores); the serve loops poll it at their next iteration, stop
   admitting, answer everything already admitted, emit one final stats
   line and return normally — so a supervisor-initiated stop never
   drops a request that was accepted.  Handlers are saved and restored
   around each loop so embedding a runtime in a larger process (tests,
   the cluster fleet) does not leak them. *)

let drain_requested = Atomic.make false

let drain_pending () = Atomic.get drain_requested

let with_drain_signals f =
  Atomic.set drain_requested false;
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set drain_requested true)))
    with Invalid_argument _ | Sys_error _ -> None (* platform without it *)
  in
  let prev_term = install Sys.sigterm in
  let prev_int = install Sys.sigint in
  Fun.protect
    ~finally:(fun () ->
      let restore s prev =
        match prev with
        | Some h -> ( try Sys.set_signal s h with Invalid_argument _ | Sys_error _ -> ())
        | None -> ()
      in
      restore Sys.sigterm prev_term;
      restore Sys.sigint prev_int)
    f

(* One line summarizing what the drained daemon did, for the operator's
   log; the full per-lane breakdown stays behind the [stats] verb. *)
let final_stats_line rt ~drained =
  let pairs = Runtime.stats_pairs rt in
  let get k = match List.assoc_opt k pairs with Some v -> v | None -> "0" in
  Dt_util.Log.status
    "serve: drained (in_flight_flushed=%d received=%s answered=%s ok=%s \
     degraded=%s failed=%s overloaded=%s)"
    drained (get "received") (get "answered") (get "ok") (get "degraded")
    (get "failed") (get "overloaded")

(* ---- cluster fault sites ----

   Three deterministic shard pathologies for the router's failover
   ladder, armed per shard via DIFFTUNE_FAULTS in its fleet spec entry:

   - [cluster.shard_crash]: the process dies abruptly (no drain, no
     socket-file cleanup) — a SIGKILL-class loss the supervisor must
     restart and the router must fail over;
   - [cluster.net_partition]: from the armed hit on, the daemon keeps
     accepting connections and reading bytes but never replies — the
     half-open-connection partition that only timeouts can detect;
   - [cluster.slow_shard]: one request stalls the daemon past any
     reasonable router budget (DIFFTUNE_SLOW_SHARD_S seconds, default
     0.75) — the reply eventually arrives *after* the router has failed
     over, exercising late-reply discard. *)

let slow_shard_delay =
  lazy
    (match Sys.getenv_opt "DIFFTUNE_SLOW_SHARD_S" with
    | Some s -> ( match float_of_string_opt s with Some f when f >= 0.0 -> f | _ -> 0.75)
    | None -> 0.75)

let fire_cluster_faults ~partitioned () =
  (* [Unix._exit]: no at_exit, no finalizers — the socket file stays
     behind exactly as a SIGKILL would leave it. *)
  if Faultsim.fire "cluster.shard_crash" then Unix._exit 70;
  if Faultsim.fire "cluster.net_partition" then partitioned := true;
  if Faultsim.fire "cluster.slow_shard" then
    Unix.sleepf (Lazy.force slow_shard_delay)

(* ---- stdio ---- *)

let serve_channels rt ic oc =
  with_drain_signals @@ fun () ->
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let batch = (Runtime.config rt).Runtime.batch in
  let partitioned = ref false in
  let drain () = final_stats_line rt ~drained:(Runtime.drain_all rt) in
  let rec loop () =
    if Atomic.get drain_requested then drain ()
    else
      match input_line ic with
      | exception End_of_file -> ignore (Runtime.drain_all rt)
      | line ->
          if String.trim line = "" then loop ()
          else begin
            fire_cluster_faults ~partitioned ();
            if !partitioned then loop ()
            else
              match Runtime.submit rt ~line ~respond with
              | `Shutdown -> ()
              | `Ok ->
                  if Runtime.pending rt >= batch then Runtime.drain rt;
                  loop ()
          end
  in
  loop ()

(* ---- Unix-domain socket ---- *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes received, not yet terminated by '\n' *)
  mutable alive : bool;
}

let write_line client line =
  if client.alive then begin
    let payload = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length payload in
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write client.fd payload !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      (* Client went away; its remaining responses are discarded, which
         is the only delivery semantics a dead peer can have. *)
      client.alive <- false
  end

(* Split complete lines out of a client's receive buffer. *)
let take_lines client =
  let data = Buffer.contents client.buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear client.buf;
      Buffer.add_substring client.buf data (last + 1)
        (String.length data - last - 1);
      String.split_on_char '\n' (String.sub data 0 last)

let serve_socket rt ~path =
  with_drain_signals @@ fun () ->
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None (* platform without sigpipe *)
  in
  if Sys.file_exists path then Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients = ref [] in
  let stop = ref false in
  let partitioned = ref false in
  let batch = (Runtime.config rt).Runtime.batch in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !clients;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      match prev_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 16;
      let handle_line client line =
        if String.trim line <> "" then begin
          fire_cluster_faults ~partitioned ();
          if not !partitioned then
            match Runtime.submit rt ~line ~respond:(write_line client) with
            | `Shutdown -> stop := true
            | `Ok -> ()
        end
      in
      let read_client client =
        let chunk = Bytes.create 4096 in
        match Unix.read client.fd chunk 0 (Bytes.length chunk) with
        | 0 -> client.alive <- false
        | n ->
            Buffer.add_subbytes client.buf chunk 0 n;
            List.iter (handle_line client) (take_lines client)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            client.alive <- false
      in
      while (not !stop) && not (Atomic.get drain_requested) do
        let fds = srv :: List.map (fun c -> c.fd) !clients in
        let ready =
          match Unix.select fds [] [] 0.02 with
          | ready, _, _ -> ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd == srv then begin
              let conn, _ = Unix.accept srv in
              clients :=
                { fd = conn; buf = Buffer.create 256; alive = true }
                :: !clients
            end
            else
              match List.find_opt (fun c -> c.fd == fd) !clients with
              | Some c -> read_client c
              | None -> ())
          ready;
        (* Evaluate when a batch is ready, or opportunistically when the
           socket went idle with work queued. *)
        if
          Runtime.pending rt >= batch
          || (ready = [] && Runtime.pending rt > 0)
        then Runtime.drain rt;
        List.iter
          (fun c ->
            if not c.alive then
              try Unix.close c.fd with Unix.Unix_error _ -> ())
          !clients;
        clients := List.filter (fun c -> c.alive) !clients
      done;
      if Atomic.get drain_requested then begin
        (* Graceful drain: stop accepting (the listener is closed by the
           finalizer and no further client bytes are read), answer every
           admitted request over the still-open client connections, and
           leave a one-line trace.  The loop then exits 0 normally. *)
        final_stats_line rt ~drained:(Runtime.drain_all rt)
      end
      else ignore (Runtime.drain_all rt))
