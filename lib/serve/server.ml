(* ---- stdio ---- *)

let serve_channels rt ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let batch = (Runtime.config rt).Runtime.batch in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ignore (Runtime.drain_all rt)
    | line ->
        if String.trim line = "" then loop ()
        else begin
          match Runtime.submit rt ~line ~respond with
          | `Shutdown -> ()
          | `Ok ->
              if Runtime.pending rt >= batch then Runtime.drain rt;
              loop ()
        end
  in
  loop ()

(* ---- Unix-domain socket ---- *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes received, not yet terminated by '\n' *)
  mutable alive : bool;
}

let write_line client line =
  if client.alive then begin
    let payload = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length payload in
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write client.fd payload !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      (* Client went away; its remaining responses are discarded, which
         is the only delivery semantics a dead peer can have. *)
      client.alive <- false
  end

(* Split complete lines out of a client's receive buffer. *)
let take_lines client =
  let data = Buffer.contents client.buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear client.buf;
      Buffer.add_substring client.buf data (last + 1)
        (String.length data - last - 1);
      String.split_on_char '\n' (String.sub data 0 last)

let serve_socket rt ~path =
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None (* platform without sigpipe *)
  in
  if Sys.file_exists path then Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients = ref [] in
  let stop = ref false in
  let batch = (Runtime.config rt).Runtime.batch in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !clients;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      match prev_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 16;
      let handle_line client line =
        if String.trim line <> "" then
          match Runtime.submit rt ~line ~respond:(write_line client) with
          | `Shutdown -> stop := true
          | `Ok -> ()
      in
      let read_client client =
        let chunk = Bytes.create 4096 in
        match Unix.read client.fd chunk 0 (Bytes.length chunk) with
        | 0 -> client.alive <- false
        | n ->
            Buffer.add_subbytes client.buf chunk 0 n;
            List.iter (handle_line client) (take_lines client)
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            client.alive <- false
      in
      while not !stop do
        let fds = srv :: List.map (fun c -> c.fd) !clients in
        let ready =
          match Unix.select fds [] [] 0.02 with
          | ready, _, _ -> ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd == srv then begin
              let conn, _ = Unix.accept srv in
              clients :=
                { fd = conn; buf = Buffer.create 256; alive = true }
                :: !clients
            end
            else
              match List.find_opt (fun c -> c.fd == fd) !clients with
              | Some c -> read_client c
              | None -> ())
          ready;
        (* Evaluate when a batch is ready, or opportunistically when the
           socket went idle with work queued. *)
        if
          Runtime.pending rt >= batch
          || (ready = [] && Runtime.pending rt > 0)
        then Runtime.drain rt;
        List.iter
          (fun c ->
            if not c.alive then
              try Unix.close c.fd with Unix.Unix_error _ -> ())
          !clients;
        clients := List.filter (fun c -> c.alive) !clients
      done;
      ignore (Runtime.drain_all rt))
