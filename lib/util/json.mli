(** A minimal JSON reader/writer for declarative config files.

    The fleet spec ([difftune_cli fleet]) is a JSON document; the repo
    deliberately depends on no external JSON package, so this module
    implements the small subset of RFC 8259 the repo needs: full parse
    of objects/arrays/strings/numbers/booleans/null with the standard
    escapes ([\uXXXX] included, encoded back as UTF-8), and a
    deterministic printer.  Numbers are held as [float] — config knobs
    in this repo fit comfortably in a double's 53-bit integer range.

    Accessors are total ([option]-returning); {!member} looks up a key
    in an object, and helpers coerce with a clear failure instead of a
    pattern-match explosion at every call site. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** key order preserved; first key wins *)

(** Raised by {!parse} with a message and the 0-based byte offset where
    the problem was noticed. *)
exception Parse_error of string * int

(** [parse s] — parse exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error). *)
val parse : string -> t

(** [parse_file path] — {!parse} the contents of [path]; I/O errors
    surface as [Sys_error]. *)
val parse_file : string -> t

(** Compact one-line rendering (keys in stored order, strings escaped,
    numbers via the shortest round-trip float format, integral floats
    without a fractional part). *)
val to_string : t -> string

(** [member key j] — the value under [key] when [j] is an object having
    it. *)
val member : string -> t -> t option

val to_num : t -> float option

(** Integral [Num] only. *)
val to_int : t -> int option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** [get_*] variants raise [Invalid_argument ctx] instead of returning
    [None]; [ctx] names the field for the error message. *)
val get_num : ctx:string -> t -> float
val get_int : ctx:string -> t -> int
val get_str : ctx:string -> t -> string

(** [mem_int ~ctx key ~default j] and friends: object-member coercion
    with a default when the key is absent, raising [Invalid_argument]
    when present but of the wrong shape. *)
val mem_int : ctx:string -> string -> default:int -> t -> int
val mem_num : ctx:string -> string -> default:float -> t -> float
val mem_str : ctx:string -> string -> default:string -> t -> string
