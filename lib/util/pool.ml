type job = {
  n : int;
  f : int -> unit;
  next : int Atomic.t;
  err : (exn * Printexc.raw_backtrace) option Atomic.t;
  suppressed : int Atomic.t; (* worker exceptions after the first *)
}

type t = {
  mutable workers : unit Domain.t array;
  m : Sync.mutex;
  work_ready : Sync.cond;
  work_done : Sync.cond;
  mutable job : job option;
  mutable generation : int;
  mutable active : int; (* workers still on the current job *)
  mutable stop : bool;
  mutable suppressed : int; (* cumulative, updated by [run] after join *)
  size : int;
}

let default_domains () =
  match Sys.getenv_opt "DIFFTUNE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Pull tasks off the shared counter until exhausted.  The first
   exception is kept with its backtrace; later tasks still run (so [run]
   always joins) and their failures are only counted. *)
let exec job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try
         Faultsim.fire_exn "pool.worker";
         job.f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         if not (Atomic.compare_and_set job.err None (Some (e, bt))) then
           Atomic.incr job.suppressed);
      loop ()
    end
  in
  loop ()

(* The worker handshake needs raw lock/wait/unlock (a [with_lock] thunk
   cannot span the condition loop), so this is one of the two modules
   whitelisted for the lock-no-protect lint rule; the wait loop itself
   is exception-free. *)
let worker t () =
  let seen = ref 0 in
  let rec loop () =
    Sync.lock t.m;
    while (not t.stop) && t.generation = !seen do
      Sync.wait t.work_ready t.m
    done;
    if t.stop then Sync.unlock t.m
    else begin
      seen := t.generation;
      let job = match t.job with Some j -> j | None -> assert false in
      Sync.unlock t.m;
      exec job;
      Sync.lock t.m;
      t.active <- t.active - 1;
      if t.active = 0 then Sync.broadcast t.work_done;
      Sync.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size = match domains with Some d -> d | None -> default_domains () in
  if size <= 0 then invalid_arg "Pool.create: domains must be positive";
  let t =
    {
      workers = [||];
      m = Sync.mutex "pool.m";
      work_ready = Sync.condition "pool.work_ready";
      work_done = Sync.condition "pool.work_done";
      job = None;
      generation = 0;
      active = 0;
      stop = false;
      suppressed = 0;
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let run t n f =
  if n <= 0 then ()
  else begin
    let job =
      {
        n;
        f;
        next = Atomic.make 0;
        err = Atomic.make None;
        suppressed = Atomic.make 0;
      }
    in
    if Array.length t.workers = 0 then begin
      exec job;
      Sync.with_lock t.m (fun () ->
          t.suppressed <- t.suppressed + Atomic.get job.suppressed)
    end
    else begin
      Sync.lock t.m;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      t.active <- Array.length t.workers;
      Sync.broadcast t.work_ready;
      Sync.unlock t.m;
      exec job;
      Sync.lock t.m;
      while t.active > 0 do
        Sync.wait t.work_done t.m
      done;
      t.job <- None;
      (* Under the lock: [run] may be called from several domains over
         the pool's lifetime, and this counter is shared state like the
         handshake fields (dt_race audit). *)
      t.suppressed <- t.suppressed + Atomic.get job.suppressed;
      Sync.unlock t.m
    end;
    match Atomic.get job.err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let suppressed_errors t = Sync.with_lock t.m (fun () -> t.suppressed)

let shutdown t =
  let to_join =
    Sync.with_lock t.m (fun () ->
        let fresh = not t.stop in
        t.stop <- true;
        Sync.broadcast t.work_ready;
        if fresh then t.workers else [||])
  in
  (* Join outside the lock: a worker finishing its last job must be able
     to reacquire [m] to observe [stop]. *)
  Array.iter Domain.join to_join;
  if Array.length to_join > 0 then
    Sync.with_lock t.m (fun () -> t.workers <- [||])
