type job = {
  n : int;
  f : int -> unit;
  next : int Atomic.t;
  err : exn option Atomic.t;
}

type t = {
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable active : int; (* workers still on the current job *)
  mutable stop : bool;
  size : int;
}

let default_domains () =
  match Sys.getenv_opt "DIFFTUNE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Pull tasks off the shared counter until exhausted.  The first
   exception is kept; later tasks still run so [run] always joins. *)
let exec job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try job.f i
       with e -> ignore (Atomic.compare_and_set job.err None (Some e)));
      loop ()
    end
  in
  loop ()

let worker t () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work_ready t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      seen := t.generation;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.m;
      exec job;
      Mutex.lock t.m;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size = match domains with Some d -> d | None -> default_domains () in
  if size <= 0 then invalid_arg "Pool.create: domains must be positive";
  let t =
    {
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stop = false;
      size;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let run t n f =
  if n <= 0 then ()
  else if Array.length t.workers = 0 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let job = { n; f; next = Atomic.make 0; err = Atomic.make None } in
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.active <- Array.length t.workers;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    exec job;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m;
    match Atomic.get job.err with Some e -> raise e | None -> ()
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]
