type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string * int

(* ---- parsing ---- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (st.pos <- st.pos + n; value)
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

let utf8_add buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let code = ref 0 in
                for i = 0 to 3 do
                  code := (!code lsl 4) lor hex_digit st st.src.[st.pos + i]
                done;
                st.pos <- st.pos + 4;
                (* Surrogate pairs are passed through as two 3-byte
                   sequences; config files in this repo are ASCII. *)
                utf8_add buf !code
            | _ -> fail st (Printf.sprintf "bad escape '\\%c'" c)));
        loop ()
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  if peek st = Some '-' then advance st;
  let digits () =
    let d0 = st.pos in
    while st.pos < n && (match st.src.[st.pos] with '0' .. '9' -> true | _ -> false) do
      advance st
    done;
    if st.pos = d0 then fail st "expected digit"
  in
  digits ();
  if peek st = Some '.' then (advance st; digits ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits ()
  | _ -> ());
  let span = String.sub st.src start (st.pos - start) in
  match float_of_string_opt span with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" span)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (advance st; Obj [])
  else begin
    let members = ref [] in
    let rec loop () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      members := (key, v) :: !members;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    loop ();
    Obj (List.rev !members)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (advance st; List [])
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    loop ();
    List (List.rev !items)
  end

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage after value";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---- printing ---- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.15g" f in
    if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> number_string f
  | Str s -> escape_string s
  | List items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj members ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) members)
      ^ "}"

(* ---- accessors ---- *)

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 53. -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List items -> Some items | _ -> None

let required ctx what = function
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "%s: expected %s" ctx what)

let get_num ~ctx j = required ctx "a number" (to_num j)
let get_int ~ctx j = required ctx "an integer" (to_int j)
let get_str ~ctx j = required ctx "a string" (to_str j)

let mem_coerce coerce what ~ctx key ~default j =
  match member key j with
  | None -> default
  | Some v ->
      required (Printf.sprintf "%s.%s" ctx key) what (coerce v)

let mem_int ~ctx key ~default j = mem_coerce to_int "an integer" ~ctx key ~default j
let mem_num ~ctx key ~default j = mem_coerce to_num "a number" ~ctx key ~default j
let mem_str ~ctx key ~default j = mem_coerce to_str "a string" ~ctx key ~default j
