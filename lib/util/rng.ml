type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: xor-shift multiply mix of the advanced state. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Advance twice: once for the child's seed, once for its gamma-ish
     decorrelation, mirroring the reference SplitMix64 split. *)
  let seed = bits64 t in
  let salt = bits64 t in
  { state = mix64 (Int64.logxor seed (Int64.mul salt 0xD6E8FEB86659FD93L)) }

let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 usable bits (OCaml ints are 63-bit) vs bounds << 2^62 keeps the
     modulo bias below 2^-50, far under experimental noise. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted_choice t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: no positive weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted_choice: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 weighted

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~k arr =
  if k < 0 || k > Array.length arr then
    invalid_arg "Rng.sample_without_replacement: k out of range";
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 k
