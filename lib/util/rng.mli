(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele et al., OOPSLA 2014): a 64-bit state advanced by a
    Weyl sequence and finalized with a variant of the MurmurHash3 mixer.  It
    is fast, has a full 2^64 period, and supports {!split} for creating
    statistically independent child generators. *)

type t

(** [create seed] makes a fresh generator from an integer seed. *)
val create : int -> t

(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent output.  Used to give each experiment component its
    own stream without coordination. *)
val split : t -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** [state t] — the raw 64-bit generator state, for checkpointing. *)
val state : t -> int64

(** [of_state s] rebuilds the generator captured by {!state}: the new
    generator's stream continues exactly where the captured one was. *)
val of_state : int64 -> t

(** [bits64 t] returns the next raw 64-bit output as a native [int64]. *)
val bits64 : t -> int64

(** [int t bound] is uniform on [0, bound).  Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] is uniform on the inclusive range [lo, hi]. *)
val int_range : t -> int -> int -> int

(** [float t bound] is uniform on [0, bound). *)
val float : t -> float -> float

(** [float_range t lo hi] is uniform on [lo, hi). *)
val float_range : t -> float -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [gaussian t ~mu ~sigma] samples a normal variate (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [choice t arr] picks a uniform element of a non-empty array. *)
val choice : t -> 'a array -> 'a

(** [choice_list t l] picks a uniform element of a non-empty list. *)
val choice_list : t -> 'a list -> 'a

(** [weighted_choice t weighted] picks an element with probability
    proportional to its non-negative weight.  Raises [Invalid_argument] on
    an empty list or all-zero weights. *)
val weighted_choice : t -> (float * 'a) list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~k arr] returns [k] distinct elements. *)
val sample_without_replacement : t -> k:int -> 'a array -> 'a array
