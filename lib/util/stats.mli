(** Descriptive statistics used across the evaluation harness. *)

(** [mean xs] — arithmetic mean.  Raises [Invalid_argument] on empty input. *)
val mean : float array -> float

(** [stddev xs] — population standard deviation. *)
val stddev : float array -> float

(** [median xs] — median (average of middle two for even lengths). *)
val median : float array -> float

(** [percentile xs p] — linear-interpolation percentile, [p] in [0,100]. *)
val percentile : float array -> float -> float

(** [min_max xs] — (minimum, maximum) of a non-empty array. *)
val min_max : float array -> float * float

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Population standard deviation of the values seen so far. *)
  val stddev : t -> float

  (** [(count, mean, m2)] — the full accumulator state, for
      checkpointing.  Round-tripping through {!restore} is exact. *)
  val state : t -> int * float * float

  (** Overwrite the accumulator with a {!state} snapshot. *)
  val restore : t -> int * float * float -> unit
end

(** [histogram ~lo ~hi ~bins xs] counts values in [bins] equal-width buckets
    spanning [lo, hi]; values outside the range clamp to the end buckets. *)
val histogram : lo:float -> hi:float -> bins:int -> float array -> int array

(** [int_histogram ~max_value xs] counts integer values 0..max_value, with
    larger values clamped into the last bucket. *)
val int_histogram : max_value:int -> int array -> int array
