(* Instrumented synchronization: the dynamic half of the dt_race suite.

   Wraps Mutex/Condition/Atomic behind one API so every lock in the
   concurrent runtime (Pool, Simcache, Breaker, the serve runtime, the
   lifecycle) goes through a single chokepoint.  With DIFFTUNE_RACECHECK
   unset this adds one atomic load per operation; with it set (or after
   [set_racecheck true]) every acquisition is recorded in a per-process
   lock-acquisition-order graph (cycle => potential deadlock =>
   {!Lock_cycle}), and guarded structures carry owner-domain stamps so
   lock-discipline violations raise {!Race} naming both access sites.

   The module must never deadlock against itself: its own bookkeeping is
   guarded by one plain [Mutex.t] ([gm]) that is only ever held for
   pure in-memory graph edits, never while acquiring a wrapped lock. *)

exception Lock_cycle of string list
exception Race of { structure : string; first : string; second : string }

let () =
  Printexc.register_printer (function
    | Lock_cycle chain ->
        Some
          (Printf.sprintf "Dt_util.Sync.Lock_cycle: lock-order cycle %s"
             (String.concat " -> " chain))
    | Race { structure; first; second } ->
        Some
          (Printf.sprintf
             "Dt_util.Sync.Race: unlocked concurrent access to %s (%s vs %s)"
             structure first second)
    | _ -> None)

(* ---- enablement ---- *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "DIFFTUNE_RACECHECK" with
    | Some s -> (
        match String.trim s with "" | "0" | "false" -> false | _ -> true)
    | None -> false)

let set_racecheck on = Atomic.set enabled on
let racecheck () = Atomic.get enabled

(* ---- counters (all only touched when racecheck is on, except the
   creation counters, which are cheap and rare) ---- *)

let c_mutexes = Atomic.make 0
let c_acquisitions = Atomic.make 0
let c_edges = Atomic.make 0
let c_cycles = Atomic.make 0
let c_races = Atomic.make 0
let c_unlocked = Atomic.make 0
let c_owner_checks = Atomic.make 0
let c_atomic_ops = Atomic.make 0

(* ---- lock-order graph ----

   Nodes are lock NAMES (not objects): "breaker.mca" and "breaker.iaca"
   are distinct, but every instance of "simcache.lru" is one node, so an
   inversion observed between any two instances is still reported.
   Edge a -> b means "b was acquired while a was held".  A cycle in this
   graph is a potential deadlock even if no run ever blocks on it. *)

let gm = Mutex.create ()
let graph : (string, string list ref) Hashtbl.t = Hashtbl.create 32

let glocked f =
  Mutex.lock gm;
  Fun.protect ~finally:(fun () -> Mutex.unlock gm) f

(* Callers hold [gm]. *)
let succs_locked a =
  match Hashtbl.find_opt graph a with Some l -> !l | None -> []

(* Path from [src] to [dst] over recorded edges, as a node list
   including both endpoints; [None] if unreachable.  Callers hold
   [gm].  The graph is a handful of named locks, so a simple DFS with a
   list-based visited set is plenty. *)
let find_path_locked src dst =
  let rec dfs visited node path =
    if String.equal node dst then Some (List.rev (node :: path))
    else if List.mem node visited then None
    else
      let visited = node :: visited in
      List.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> dfs visited s (node :: path))
        None (succs_locked node)
  in
  dfs [] src []

let add_edge_locked a b =
  match Hashtbl.find_opt graph a with
  | Some l -> if not (List.mem b !l) then begin
      l := b :: !l;
      Atomic.incr c_edges
    end
  | None ->
      Hashtbl.replace graph a (ref [ b ]);
      Atomic.incr c_edges

(* Bumped on every {!reset_graph} so per-domain validated-pair caches
   (below) know their entries describe a dead graph. *)
let graph_gen = Atomic.make 0

let reset_graph () =
  glocked (fun () -> Hashtbl.reset graph);
  Atomic.incr graph_gen;
  Atomic.set c_edges 0;
  Atomic.set c_cycles 0;
  Atomic.set c_races 0;
  Atomic.set c_unlocked 0;
  Atomic.set c_acquisitions 0;
  Atomic.set c_owner_checks 0;
  Atomic.set c_atomic_ops 0

(* ---- mutexes ---- *)

type mutex = {
  m : Mutex.t;
  name : string;
  holder : int Atomic.t; (* domain id currently inside, -1 when free *)
}

let self_id () = (Domain.self () :> int)

let mutex name =
  Atomic.incr c_mutexes;
  { m = Mutex.create (); name; holder = Atomic.make (-1) }

let mutex_name t = t.name

(* Per-domain stack of held wrapped locks, innermost first. *)
let held_key : mutex list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Per-domain cache of (outer, inner) name pairs already validated
   against the order graph.  Sound because the graph is add-only and
   acyclic — an edge that would close a cycle raises {!Lock_cycle}
   before it is recorded — so a pair once proven safe stays safe until
   {!reset_graph} starts a new generation.  This keeps the steady-state
   nested acquisition off the global graph mutex entirely. *)
let seen_key : (int ref * (string * string, unit) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref (-1), Hashtbl.create 16))

(* Lock-order accounting for an acquisition of [t] by a domain already
   holding [held].  Raises {!Lock_cycle} BEFORE blocking on the OS
   mutex, so a detected inversion can never turn into a real hang. *)
let note_acquire t held =
  (match held with
  | [] -> ()
  | top :: _ ->
      if List.exists (fun h -> h == t || String.equal h.name t.name) held then begin
        Atomic.incr c_cycles;
        raise (Lock_cycle [ t.name; t.name ])
      end;
      let gen = Atomic.get graph_gen in
      let sgen, seen = Domain.DLS.get seen_key in
      if !sgen <> gen then begin
        Hashtbl.reset seen;
        sgen := gen
      end;
      let key = (top.name, t.name) in
      if Hashtbl.mem seen key then ()
      else begin
      let cycle =
        glocked (fun () ->
            let found =
              List.fold_left
                (fun acc h ->
                  match acc with
                  | Some _ -> acc
                  | None -> find_path_locked t.name h.name)
                None held
            in
            (* Only record the ordering fact when the acquisition will
               actually proceed: a detected inversion raises before
               locking, so its edge never happens — recording it would
               poison every later acquisition of the victim pair. *)
            if Option.is_none found then add_edge_locked top.name t.name;
            found)
      in
      (match cycle with
      | None -> ()
      | Some path ->
          Atomic.incr c_cycles;
          raise (Lock_cycle (path @ [ t.name ])));
      Hashtbl.add seen key ()
      end);
  Atomic.incr c_acquisitions

let lock t =
  if Atomic.get enabled then begin
    let held = Domain.DLS.get held_key in
    note_acquire t !held;
    Mutex.lock t.m;
    Atomic.set t.holder (self_id ());
    held := t :: !held
  end
  else Mutex.lock t.m

let unlock t =
  if Atomic.get enabled then begin
    let held = Domain.DLS.get held_key in
    (held :=
       match !held with
       | h :: rest when h == t -> rest
       | l -> List.filter (fun h -> not (h == t)) l);
    Atomic.set t.holder (-1)
  end;
  Mutex.unlock t.m

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let held_by_self t = Atomic.get t.holder = self_id ()

(* ---- conditions ---- *)

type cond = { c : Condition.t; cname : string }

let condition cname = { c = Condition.create (); cname }
let signal c = Condition.signal c.c
let broadcast c = Condition.broadcast c.c

let wait c t =
  if Atomic.get enabled then begin
    (* The OS releases [t.m] for the duration of the wait; mirror that
       in the bookkeeping so other domains' guard checks do not see a
       phantom holder. *)
    let held = Domain.DLS.get held_key in
    held := List.filter (fun h -> not (h == t)) !held;
    Atomic.set t.holder (-1);
    Fun.protect
      ~finally:(fun () ->
        Atomic.set t.holder (self_id ());
        held := t :: !held)
      (fun () -> Condition.wait c.c t.m)
  end
  else Condition.wait c.c t.m

(* ---- guards: mutex-disciplined structures ---- *)

type guard = {
  gname : string;
  gmutex : mutex;
  (* Last access made without holding [gmutex]: (domain, site).  Sticky
     until the next locked access observes and reports it, so even a
     fully sequential unlocked write is caught. *)
  gtok : (int * string) option Atomic.t;
}

let guard gname gmutex = { gname; gmutex; gtok = Atomic.make None }

let check g ~site =
  if Atomic.get enabled then
    if held_by_self g.gmutex then (
      match Atomic.exchange g.gtok None with
      | Some (_, osite) ->
          Atomic.incr c_races;
          raise (Race { structure = g.gname; first = osite; second = site })
      | None -> ())
    else begin
      Atomic.incr c_unlocked;
      let h = Atomic.get g.gmutex.holder in
      if h >= 0 then begin
        Atomic.incr c_races;
        raise
          (Race
             {
               structure = g.gname;
               first = Printf.sprintf "%s held by domain %d" g.gmutex.name h;
               second = site;
             })
      end
      else Atomic.set g.gtok (Some (self_id (), site))
    end

(* ---- owners: single-domain (confined) structures ---- *)

type owner = { oname : string; otok : (int * string) option Atomic.t }

let owner oname = { oname; otok = Atomic.make None }

let with_owner o ~site f =
  if not (Atomic.get enabled) then f ()
  else begin
    Atomic.incr c_owner_checks;
    let self = self_id () in
    (match Atomic.get o.otok with
    | Some (od, osite) when od <> self ->
        Atomic.incr c_races;
        raise (Race { structure = o.oname; first = osite; second = site })
    | _ -> ());
    let prev = Atomic.exchange o.otok (Some (self, site)) in
    Fun.protect ~finally:(fun () -> Atomic.set o.otok prev) f
  end

(* ---- Atomic passthrough ---- *)

module A = struct
  type 'a t = 'a Atomic.t

  let count () = if Atomic.get enabled then Atomic.incr c_atomic_ops

  let make v = Atomic.make v

  let get a =
    count ();
    Atomic.get a

  let set a v =
    count ();
    Atomic.set a v

  let exchange a v =
    count ();
    Atomic.exchange a v

  let compare_and_set a seen v =
    count ();
    Atomic.compare_and_set a seen v

  let fetch_and_add a n =
    count ();
    Atomic.fetch_and_add a n

  let incr a = ignore (fetch_and_add a 1)
end

(* ---- seeded-fault helper ---- *)

(* Acquire [a] then [b], release both, then acquire them in the
   opposite order: with racecheck on, the second nesting closes an
   a <-> b cycle and raises {!Lock_cycle}; with it off, this is four
   uncontended lock/unlock pairs and no deadlock (the caller arms it at
   a single Faultsim hit, so two domains never run the probe
   concurrently). *)
let cycle_probe a b =
  with_lock a (fun () -> with_lock b (fun () -> ()));
  with_lock b (fun () -> with_lock a (fun () -> ()))

(* ---- stats ---- *)

let stats () =
  let i k a = (k, string_of_int (Atomic.get a)) in
  [
    ("enabled", if Atomic.get enabled then "1" else "0");
    i "mutexes" c_mutexes;
    i "acquisitions" c_acquisitions;
    i "order_edges" c_edges;
    i "lock_cycles" c_cycles;
    i "races" c_races;
    i "unlocked_accesses" c_unlocked;
    i "owner_checks" c_owner_checks;
    i "atomic_ops" c_atomic_ops;
  ]
