(** A persistent pool of worker domains for data-parallel loops.

    Workers are spawned once at {!create} and parked on a condition
    variable between jobs, so per-job overhead is a broadcast + join
    rather than domain spawns.  {!run} executes [f 0 .. f (n-1)] across
    the pool (the calling domain participates too); tasks are handed out
    by an atomic counter, so callers that need deterministic results must
    make each [f i] write only to slot [i] of preallocated output and do
    any reduction themselves in index order afterwards.

    Pool size comes from [?domains], else the [DIFFTUNE_DOMAINS]
    environment variable, else [Domain.recommended_domain_count ()].
    A pool of size 1 runs everything inline on the caller — useful both
    for determinism checks and on single-core machines. *)

type t

(** [create ?domains ()] spawns [domains - 1] workers ([domains] total
    execution lanes including the caller).  Raises [Invalid_argument] on
    a non-positive count. *)
val create : ?domains:int -> unit -> t

(** Number of execution lanes (workers + the calling domain). *)
val size : t -> int

(** [run t n f] evaluates [f i] for every [i] in [0, n); returns when all
    are done.  If any task raises, the {e first} exception (in completion
    order) is re-raised with the failing worker's backtrace
    ([Printexc.raise_with_backtrace]) after the job completes; later
    failures are only counted (see {!suppressed_errors}).  The
    [pool.worker] {!Faultsim} site fires once per task, before [f].
    Not reentrant: [f] must not call {!run} on the same pool. *)
val run : t -> int -> (int -> unit) -> unit

(** Cumulative count of worker exceptions beyond the first of each
    failing job — failures whose details were dropped in favour of the
    job's primary error. *)
val suppressed_errors : t -> int

(** Joins the workers.  Idempotent: later calls are no-ops.  The pool
    must not be used for {!run} afterwards. *)
val shutdown : t -> unit

(** The pool size {!create} would pick with no [?domains] argument:
    [DIFFTUNE_DOMAINS] if set and positive, else
    [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int
