(** A persistent pool of worker domains for data-parallel loops.

    Workers are spawned once at {!create} and parked on a condition
    variable between jobs, so per-job overhead is a broadcast + join
    rather than domain spawns.  {!run} executes [f 0 .. f (n-1)] across
    the pool (the calling domain participates too); tasks are handed out
    by an atomic counter, so callers that need deterministic results must
    make each [f i] write only to slot [i] of preallocated output and do
    any reduction themselves in index order afterwards.

    Pool size comes from [?domains], else the [DIFFTUNE_DOMAINS]
    environment variable, else [Domain.recommended_domain_count ()].
    A pool of size 1 runs everything inline on the caller — useful both
    for determinism checks and on single-core machines. *)

type t

(** [create ?domains ()] spawns [domains - 1] workers ([domains] total
    execution lanes including the caller).  Raises [Invalid_argument] on
    a non-positive count. *)
val create : ?domains:int -> unit -> t

(** Number of execution lanes (workers + the calling domain). *)
val size : t -> int

(** [run t n f] evaluates [f i] for every [i] in [0, n); returns when all
    are done.  If any task raises, one of the exceptions is re-raised
    after the job completes.  Not reentrant: [f] must not call {!run} on
    the same pool. *)
val run : t -> int -> (int -> unit) -> unit

(** Joins the workers.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** The pool size {!create} would pick with no [?domains] argument:
    [DIFFTUNE_DOMAINS] if set and positive, else
    [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int
