(* Central stderr logging.  The dt_lint "bare-eprintf" rule forbids
   direct Printf.eprintf outside lib/util so diagnostics stay routable:
   every library message funnels through here (or through an explicit
   config.log callback, as in Engine/Runner). *)

let warn fmt = Printf.eprintf ("warning: " ^^ fmt ^^ "\n%!")
let error fmt = Printf.eprintf ("error: " ^^ fmt ^^ "\n%!")
let status fmt = Printf.eprintf (fmt ^^ "\n%!")
