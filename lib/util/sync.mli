(** Instrumented synchronization — the dynamic layer of the dt_race
    concurrency-correctness suite.

    Wraps [Mutex]/[Condition]/[Atomic] behind one API so every lock in
    the concurrent runtime goes through a single chokepoint.  Checking
    is off by default (one atomic load per operation); set
    [DIFFTUNE_RACECHECK=1] in the environment (or call
    {!set_racecheck}[ true]) to turn on:

    - a per-process {b lock-acquisition-order graph}: acquiring lock B
      while holding lock A records the edge A→B; a later acquisition
      that would close a cycle raises {!Lock_cycle} with the full chain
      {e before} blocking, so a potential deadlock is reported as a
      structured fault instead of a hang;
    - {b guard stamps} on mutex-disciplined structures: accesses
      declared via {!check} while the owning mutex is not held leave a
      sticky (domain, site) token; the next properly locked access — or
      an access overlapping a concurrent holder — raises {!Race} naming
      both sites;
    - {b owner tokens} for single-domain (confined) structures:
      {!with_owner} raises {!Race} when two domains overlap inside the
      confined region;
    - counters exported by {!stats} for the serve [stats] response. *)

exception Lock_cycle of string list
(** Lock-order cycle, as the chain of lock names closing it
    (e.g. [["a"; "b"; "a"]], or [["a"; "a"]] for a self-relock). *)

exception Race of { structure : string; first : string; second : string }
(** Lock-discipline violation on [structure], naming both access
    sites: [first] is the earlier (or concurrent-holder) site, [second]
    the access that detected it. *)

val set_racecheck : bool -> unit
(** Override the [DIFFTUNE_RACECHECK] environment setting (tests). *)

val racecheck : unit -> bool
(** Is dynamic checking currently enabled? *)

val reset_graph : unit -> unit
(** Clear the lock-order graph and all counters (tests only: lets
    independent scenarios not see each other's edges). *)

(** {2 Mutexes and conditions} *)

type mutex

val mutex : string -> mutex
(** [mutex name] creates a named lock.  Names are the nodes of the
    order graph: give every lock protecting the same kind of structure
    the same name (e.g. ["simcache.lru"]) so inversions between
    instances are still caught, and unrelated locks distinct names. *)

val mutex_name : mutex -> string
val lock : mutex -> unit
val unlock : mutex -> unit

val with_lock : mutex -> (unit -> 'a) -> 'a
(** [lock] + [Fun.protect] unlock: exception-safe critical section. *)

val held_by_self : mutex -> bool
(** Is this mutex currently held by the calling domain?  (Only
    meaningful while checking is enabled; [false] otherwise.) *)

type cond

val condition : string -> cond
val signal : cond -> unit
val broadcast : cond -> unit

val wait : cond -> mutex -> unit
(** [Condition.wait] that keeps the holder/held-stack bookkeeping
    consistent across the implicit release. *)

(** {2 Guarded structures} *)

type guard

val guard : string -> mutex -> guard
(** [guard name m] declares a structure whose mutations require [m]. *)

val check : guard -> site:string -> unit
(** Call at each access to the guarded structure.  Under racecheck: if
    the owning mutex is held by the caller, consumes (and reports) any
    sticky unlocked token; otherwise stamps the token — or raises
    {!Race} immediately if another domain holds the mutex right now. *)

(** {2 Confined structures} *)

type owner

val owner : string -> owner
(** Declares a structure meant to be touched by one domain at a time
    (drain-thread state, a per-model plan cache). *)

val with_owner : owner -> site:string -> (unit -> 'a) -> 'a
(** Runs [f] stamped as the current owner; raises {!Race} if another
    domain is inside a [with_owner] region for the same structure.
    Reentrant within a domain. *)

(** {2 Atomics} *)

(** Pass-through over [Stdlib.Atomic] that counts operations under
    racecheck (exported via {!stats}); same semantics otherwise. *)
module A : sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
end

(** {2 Fault-site helper} *)

val cycle_probe : mutex -> mutex -> unit
(** Acquire [a] then [b], then [b] then [a].  Under racecheck the
    second nesting closes a cycle and raises {!Lock_cycle}; with
    checking off it is four uncontended lock/unlock pairs (no
    deadlock).  Used by the seeded [race.lock_cycle] fault site. *)

(** {2 Stats} *)

val stats : unit -> (string * string) list
(** Counter snapshot: enabled flag, mutexes created, acquisitions,
    order edges, cycles, races, unlocked accesses, owner checks,
    atomic ops. *)
