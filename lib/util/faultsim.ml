exception Injected of string

type state = {
  mutable armed : (string * int) list; (* site, 1-based hit number *)
  counters : (string, int) Hashtbl.t;
}

let st = { armed = []; counters = Hashtbl.create 8 }
let m = Mutex.create ()

(* Fast path for the common case of no injection: checked without the
   lock so instrumented hot loops pay one atomic load.  [initialized]
   (explicit config or env already loaded) is read on the same unlocked
   fast path, so it is an Atomic too — a plain mutable here was a data
   race the dt_race audit flagged. *)
let any_armed = Atomic.make false
let initialized = Atomic.make false

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reset_locked armed =
  st.armed <- armed;
  Hashtbl.reset st.counters;
  Atomic.set initialized true;
  Atomic.set any_armed (armed <> [])

let parse spec =
  String.split_on_char ';' spec
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun entry ->
         match String.trim entry with
         | "" -> None
         | entry -> (
             match String.index_opt entry '@' with
             | None -> Some (entry, 1)
             | Some i ->
                 let site = String.sub entry 0 i in
                 let num =
                   String.sub entry (i + 1) (String.length entry - i - 1)
                 in
                 (match (site, int_of_string_opt num) with
                 | "", _ | _, None ->
                     invalid_arg
                       (Printf.sprintf "Faultsim: malformed entry %S" entry)
                 | _, Some k when k < 1 ->
                     invalid_arg
                       (Printf.sprintf "Faultsim: hit number must be >= 1 in %S"
                          entry)
                 | site, Some k -> Some (site, k))))

let configure spec =
  let armed = parse spec in
  locked (fun () -> reset_locked armed)

let clear () = locked (fun () -> reset_locked [])

let arm site ~at =
  if at < 1 then invalid_arg "Faultsim.arm: hit number must be >= 1";
  locked (fun () ->
      st.armed <- (site, at) :: st.armed;
      Atomic.set initialized true;
      Atomic.set any_armed true)

let load_env_locked () =
  if not (Atomic.get initialized) then begin
    (match Sys.getenv_opt "DIFFTUNE_FAULTS" with
    | Some spec when String.trim spec <> "" -> reset_locked (parse spec)
    | _ -> ());
    Atomic.set initialized true
  end

let fire site =
  if (not (Atomic.get any_armed)) && Atomic.get initialized then false
  else
    locked (fun () ->
        load_env_locked ();
        if st.armed = [] then false
        else begin
          let hit =
            1 + (Option.value ~default:0 (Hashtbl.find_opt st.counters site))
          in
          Hashtbl.replace st.counters site hit;
          List.exists (fun (s, k) -> s = site && k = hit) st.armed
        end)

let fire_exn site = if fire site then raise (Injected site)

let hits site =
  locked (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt st.counters site))

let active () = Atomic.get any_armed
