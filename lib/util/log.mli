(** Central stderr logging for libraries and executables.

    The repo lint (`dt_lint`, rule [bare-eprintf]) rejects direct
    [Printf.eprintf] outside [lib/util]; route diagnostics through these
    instead so output conventions (prefix, flushing) stay in one place. *)

(** [warn fmt ...] — "warning: ..." on stderr, newline + flush appended. *)
val warn : ('a, out_channel, unit) format -> 'a

(** [error fmt ...] — "error: ..." on stderr, newline + flush appended. *)
val error : ('a, out_channel, unit) format -> 'a

(** [status fmt ...] — bare message on stderr, newline + flush appended. *)
val status : ('a, out_channel, unit) format -> 'a
