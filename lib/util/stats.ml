let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then ys.(lo)
  else
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let median xs = percentile xs 50.0

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then invalid_arg "Welford.mean: empty" else t.mean

  let stddev t =
    if t.n = 0 then invalid_arg "Welford.stddev: empty"
    else sqrt (t.m2 /. float_of_int t.n)

  let state t = (t.n, t.mean, t.m2)

  let restore t (n, mean, m2) =
    if n < 0 then invalid_arg "Welford.restore: negative count";
    t.n <- n;
    t.mean <- mean;
    t.m2 <- m2
end

let histogram ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let int_histogram ~max_value xs =
  if max_value < 0 then invalid_arg "Stats.int_histogram: negative max";
  let counts = Array.make (max_value + 1) 0 in
  Array.iter
    (fun x ->
      let i = if x < 0 then 0 else if x > max_value then max_value else x in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts
