(** Deterministic fault injection for exercising recovery paths.

    Long training runs must survive worker crashes, NaN gradients, and
    torn checkpoint files; those paths are worthless if they are only
    executed in production.  This module lets tests (and a [make verify]
    smoke matrix) *force* each failure at a precise, reproducible point.

    Code under test declares named {e sites} by calling {!fire} (or
    {!fire_exn}) at the place where a fault could occur; each call counts
    one {e hit} of that site.  A site is {e armed} at hit number [k]
    (1-based) either programmatically ({!arm}) or via the
    [DIFFTUNE_FAULTS] environment variable, a [;]- or [,]-separated list
    of [site\@k] entries (bare [site] means [site\@1]):

    {v DIFFTUNE_FAULTS="pool.worker@2;grad.nan@3" v}

    Sites used by this repository:
    - [pool.worker] — raise {!Injected} inside a {!Pool.run} task;
    - [grad.nan] — poison a minibatch gradient to NaN
      (checked in [Engine.train_surrogate] / [Engine.optimize_table]);
    - [ckpt.truncate] — truncate a checkpoint file just after it is
      atomically written ([Checkpoint.save]);
    - [engine.abort] — raise {!Injected} right after a periodic
      checkpoint write: a SIGKILL-style interruption at a resumable
      boundary;
    - [collect.pilot_crash] — raise {!Injected} mid-pilot during
      complexity-guided collection ([Engine.collect] with [Guided]
      sampling), after the uniform pilot draw but before the pilot
      fits are checkpointed: the re-run must redo the pilot and
      produce a bit-identical dataset;
    - [serve.worker_crash] — raise {!Injected} inside a serving backend
      attempt ([Dt_serve.Runtime]): exercises retry with backoff,
      breaker accounting, and the degradation chain;
    - [serve.slow_block] — swap a pathological million-cycle table into
      one [Dt_serve.Backend.mca] call, forcing a genuine
      [Pipeline.Budget_exceeded] deadline through the real watchdog;
    - [serve.malformed_input] — corrupt the tail of one request line at
      admission ([Dt_serve.Runtime.submit]); the id survives, so the
      structured parse error stays attributable to its sender;
    - [lifecycle.corrupt_model] — truncate a versioned surrogate model
      file just after [Dt_serve.Lifecycle.Registry.save] atomically
      installed it: the validating reload before a hot-swap must reject
      the candidate (CRC) and keep the old model serving;
    - [lifecycle.retrain_crash] — raise {!Injected} inside the
      lifecycle's background retraining job; serving must continue on
      the current model and drift tracking restart;
    - [lifecycle.drift_storm] — force one drift window out of band at
      its finalization ([Dt_serve.Lifecycle]): drives the whole
      drift -> retrain -> swap -> canary/rollback path at a precise
      window ordinal regardless of the real error level;
    - [race.unlocked_write] — make one [Simcache.add] mutate the LRU
      structure {e outside} its mutex: a seeded data race that the
      dynamic sanitizer ([DIFFTUNE_RACECHECK=1]) must report as
      {!Dt_util.Sync.Race} with both conflicting sites, and that must
      pass silently with checking off;
    - [race.lock_cycle] — probe two lock-order edges in opposite
      directions inside [Dt_serve.Runtime.process]: a seeded deadlock
      candidate the sanitizer must raise as {!Dt_util.Sync.Lock_cycle}
      {e before} blocking, and that must pass silently with checking
      off;
    - [cluster.shard_crash] — kill a serve daemon abruptly
      ([Unix._exit 70], no drain, stale socket file left behind) at the
      armed request: the fleet supervisor must restart it and the
      router must fail the in-flight request over to a replica;
    - [cluster.net_partition] — from the armed hit on, a serve daemon
      keeps accepting connections and reading requests but never
      replies: the half-open partition only the router's reply timeout
      can detect;
    - [cluster.slow_shard] — stall a serve daemon on one request for
      [DIFFTUNE_SLOW_SHARD_S] seconds (default 0.75), past any
      reasonable router budget: the reply lands {e after} failover,
      exercising late-reply discard.

    Hit counters are shared across domains (mutex-protected) so a spec
    like [pool.worker\@5] fires exactly once regardless of how the pool
    schedules tasks.  When nothing is armed, {!fire} is a single atomic
    load. *)

(** Raised by {!fire_exn} at an armed hit; the payload is the site. *)
exception Injected of string

(** [configure spec] replaces the armed set with the parse of [spec]
    (same syntax as [DIFFTUNE_FAULTS]) and resets all hit counters.
    Raises [Invalid_argument] on a malformed spec. *)
val configure : string -> unit

(** Disarms every site and resets hit counters.  Also suppresses any
    later implicit re-read of [DIFFTUNE_FAULTS]. *)
val clear : unit -> unit

(** [arm site ~at] additionally arms [site] at hit [at] (1-based). *)
val arm : string -> at:int -> unit

(** [fire site] counts one hit of [site] and reports whether a fault is
    armed at exactly this hit.  The first call in a process loads
    [DIFFTUNE_FAULTS] if no explicit {!configure}/{!clear}/{!arm} came
    first. *)
val fire : string -> bool

(** [fire_exn site] — [if fire site then raise (Injected site)]. *)
val fire_exn : string -> unit

(** Hits of [site] counted since the last {!configure}/{!clear}. *)
val hits : string -> int

(** Whether any site is currently armed. *)
val active : unit -> bool
