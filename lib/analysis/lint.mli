(** AST-level repo lint (the static half of the PR 3 analysis suite).

    Parses OCaml sources with compiler-libs and walks them with
    {!Ast_iterator}, applying repo-specific rules: float [=]/[<>]
    comparisons, catch-all exception handlers, order-dependent
    [Hashtbl.iter]/[fold] in the deterministic numeric substrate,
    [unsafe_get]/[unsafe_set] outside the audited kernel files, and bare
    [eprintf] outside [lib/util].  The dt_race pass (PR 8) adds the
    lock-discipline rules: mutation of cataloged lock-guarded fields
    outside their lock scope, raw lock acquisition without
    [Fun.protect], blocking calls while a lock is held (and condition
    waits outside predicate loops), nested acquisition violating the
    declared lock-rank order, and non-atomic [Atomic.t]
    read-modify-write.  Whitelists are part of the rule definitions and
    carry a written justification; see DESIGN.md "Correctness tooling"
    and "Concurrency checking". *)

type finding = {
  rule : string;
  file : string;
  line : int; (* 1-based *)
  col : int; (* 0-based *)
  msg : string;
}

type rule = {
  name : string;
  summary : string;
  in_scope : string -> bool;
      (** whether the rule applies to a repo-relative path *)
  whitelist : (string * string) list;
      (** (path fragment, justification); matching files suppress
          findings of this rule, counted separately *)
}

(** The rule catalogue, in reporting order. *)
val rules : rule list

(** The dt_race shared-state catalog: (path fragment, lock-guarded
    mutable field names).  The unguarded-mutation rule flags setfield of
    these outside a lock scope. *)
val guarded_fields : (string * string list) list

(** Declared lock-acquisition order: (path fragment or [""] for
    path-independent names, lock name, rank).  Nested acquisitions must
    use strictly increasing ranks; the lock-order rule flags the rest. *)
val lock_ranks : (string * string * int) list

(** [lint_string ~path ?only src] lints source text as though it lived
    at [path] (scoping and whitelists key off the path).  [only]
    restricts checking to the named rules (default: all).  Returns
    findings ordered by position plus the count of whitelisted
    (suppressed) findings.  Unparseable input yields a single
    [parse-error] finding. *)
val lint_string : path:string -> ?only:string list -> string -> finding list * int

(** [lint_file ?only path] reads and lints one file; see {!lint_string}. *)
val lint_file : ?only:string list -> string -> finding list * int
