(** AST-level repo lint (the static half of the PR 3 analysis suite).

    Parses OCaml sources with compiler-libs and walks them with
    {!Ast_iterator}, applying repo-specific rules: float [=]/[<>]
    comparisons, catch-all exception handlers, order-dependent
    [Hashtbl.iter]/[fold] in the deterministic numeric substrate,
    [unsafe_get]/[unsafe_set] outside the audited kernel files, and bare
    [eprintf] outside [lib/util].  Whitelists are part of the rule
    definitions and carry a written justification; see DESIGN.md
    "Correctness tooling". *)

type finding = {
  rule : string;
  file : string;
  line : int; (* 1-based *)
  col : int; (* 0-based *)
  msg : string;
}

type rule = {
  name : string;
  summary : string;
  in_scope : string -> bool;
      (** whether the rule applies to a repo-relative path *)
  whitelist : (string * string) list;
      (** (path fragment, justification); matching files suppress
          findings of this rule, counted separately *)
}

(** The rule catalogue, in reporting order. *)
val rules : rule list

(** [lint_string ~path src] lints source text as though it lived at
    [path] (scoping and whitelists key off the path).  Returns findings
    ordered by position plus the count of whitelisted (suppressed)
    findings.  Unparseable input yields a single [parse-error] finding. *)
val lint_string : path:string -> string -> finding list * int

(** [lint_file path] reads and lints one file; see {!lint_string}. *)
val lint_file : string -> finding list * int
