(* AST-level repo lint for the DiffTune numeric substrate.

   Built directly on compiler-libs.common (Parse + Ast_iterator), no
   external dependencies.  The rules are repo-specific: each encodes a
   defect class that has bitten (or nearly bitten) this codebase — see
   DESIGN.md "Correctness tooling" for the catalogue and the whitelist
   policy.  The [bin/dt_lint] driver walks lib/ and bin/ and fails the
   @lint alias on any non-whitelisted finding. *)

open Parsetree

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type rule = {
  name : string;
  summary : string;
  in_scope : string -> bool; (* normalized repo-relative path *)
  whitelist : (string * string) list; (* path fragment, justification *)
}

(* [contains hay needle] — plain substring test, so whitelist entries can
   be directory prefixes ("lib/util/") or file suffixes alike. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let everywhere _ = true

(* The paths where iteration order feeds gradient reduction, pooled
   work distribution, or checkpoint contents — nondeterminism there
   breaks the bit-identical-across-domain-counts guarantee from PR 1. *)
let substrate_paths path =
  List.exists
    (fun p -> contains path p)
    [
      "lib/util/";
      "lib/tensor/";
      "lib/autodiff/";
      "lib/nn/";
      "lib/surrogate/";
      "lib/difftune/";
    ]

let float_eq_rule =
  {
    name = "float-eq";
    summary =
      "polymorphic =/<> against a float expression; exact float equality \
       is almost always a rounding bug — use Float.equal or an epsilon";
    in_scope = everywhere;
    whitelist =
      [
        ( "lib/tensor/tensor.ml",
          "beta = 0.0 / x <> 0.0 dispatch in the gemv/gemv_t/ger kernels is \
           an intentional exact-value fast path (skip-zero, \
           overwrite-vs-accumulate), not a tolerance comparison" );
        ( "lib/tensor/gemm.ml",
          "beta = 0.0 / beta <> 1.0 dispatch in the gemm front end is the \
           same exact-value overwrite-vs-accumulate rule the gemv family \
           uses, not a tolerance comparison" );
      ];
  }

let catch_all_rule =
  {
    name = "catch-all";
    summary =
      "try ... with _ -> swallows every exception, including \
       Out_of_memory, Stack_overflow and injected faults; match the \
       exceptions you expect, or bind and reraise";
    in_scope = everywhere;
    whitelist = [];
  }

let hashtbl_order_rule =
  {
    name = "hashtbl-order";
    summary =
      "Hashtbl.iter/fold enumerate in unspecified hash order; in \
       gradient-reduction / pool / checkpoint paths this breaks the \
       deterministic ordered reduction — iterate a sorted or insertion- \
       ordered structure instead";
    in_scope = substrate_paths;
    whitelist = [];
  }

let unsafe_index_rule =
  {
    name = "unsafe-index";
    summary =
      "unsafe_get/unsafe_set skip bounds checks; outside the audited \
       kernel files an index bug corrupts arena memory silently (the \
       PR 2 gemv class) — use checked accessors";
    in_scope = everywhere;
    whitelist =
      [
        ("lib/tensor/tensor.ml", "audited kernel file (gemv/ger/axpy loops)");
        ( "lib/tensor/gemm.ml",
          "audited kernel file (gemm front end: beta prescale over \
           shape-checked destinations; the inner loops live in \
           gemm_stubs.c behind the same shape checks)" );
        ("lib/autodiff/ad.ml", "audited kernel file (tape op forward/backward)");
        ("lib/nn/nn.ml",
         "audited kernel file (Adam update; checked path under sanitize)");
      ];
  }

let bare_eprintf_rule =
  {
    name = "bare-eprintf";
    summary =
      "direct eprintf scatters diagnostics; route library messages \
       through Dt_util.Log (or an explicit config.log callback) so \
       output stays controllable";
    in_scope = everywhere;
    whitelist =
      [ ("lib/util/", "Dt_util.Log owns the actual stderr writes") ];
  }

(* The batched compute path (PR 5) exists so per-sample work becomes
   one gemm per timestep; a gemv/matvec issued from inside a loop is
   the exact per-row pattern it replaces and costs the SIMD width. *)
let gemv_batch_rule =
  {
    name = "gemv-batch-loop";
    summary =
      "per-row gemv/matvec issued from inside a for loop in the batched \
       network code; batch the rows and make one gemm/matmul call per \
       step instead";
    in_scope = (fun path -> contains path "lib/nn/");
    whitelist = [];
  }

(* The compiled executor (PR 6) records a trace once and replays a
   static plan; network code that issues Ad tape-op constructors from
   inside a for loop on a per-call path pays the interpreter's per-op
   allocation and dispatch on every iteration instead.  Loops that
   build a trace *under* an Ad.with_plan capture are fine — they run
   once per record — which is exactly what the whitelisted files do. *)
let tape_op_loop_rule =
  {
    name = "tape-op-loop";
    summary =
      "Ad tape-op constructor called inside a for loop in network code; \
       hot paths should record once under Ad.with_plan and replay the \
       compiled plan instead of re-issuing per-op interpreter calls";
    in_scope =
      (fun path -> contains path "lib/nn/" || contains path "lib/surrogate/");
    whitelist =
      [
        ( "lib/nn/nn.ml",
          "LSTM/MLP step loops build the trace exactly once per capture; \
           the Model entry points record them under Ad.with_plan and \
           replay the sealed plan on every later call" );
        ( "lib/surrogate/model.ml",
          "trace closures here run inside Ad.with_plan (plan cache keyed \
           by shape profile), so their loops execute once per record, \
           not once per prediction" );
      ];
  }

(* ---- lock-discipline catalog (dt_race static layer, PR 8) ----

   The dynamic half lives in Dt_util.Sync; these tables are the static
   declaration of the same discipline: which record fields are guarded
   by which lock, and in what order locks may nest.  A field is "in a
   lock scope" when the mutation sits inside a [with_lock]/[locked]/
   [Mutex.protect] thunk, in the statement sequence following a raw
   [Sync.lock]/[Mutex.lock], inside a [*_locked]-suffixed helper (the
   caller-holds-the-lock convention), or inside [create] (the structure
   has not escaped yet). *)

let guarded_fields =
  [
    ( "lib/util/pool.ml",
      [ "workers"; "job"; "generation"; "active"; "stop"; "suppressed" ] );
    ("lib/util/faultsim.ml", [ "armed" ]);
    ( "lib/serve/breaker.ml",
      [
        "st"; "consecutive_failures"; "opened_at"; "probe_inflight"; "opened";
        "half_opened"; "closed"; "rejected";
      ] );
    ( "lib/serve/runtime.ml",
      [
        "received"; "answered"; "ok"; "degraded"; "failed"; "overloaded";
        "malformed"; "queue_hwm"; "stopped"; "requests"; "served";
        "served_fallback"; "retries"; "timeouts"; "faults"; "breaker_skips";
        "exhausted";
      ] );
    ( "lib/difftune/simcache.ml",
      [ "value"; "prev"; "next"; "head"; "tail"; "hits"; "misses" ] );
  ]

let fields_for path =
  List.concat_map
    (fun (p, fs) -> if contains path p then fs else [])
    guarded_fields

(* Declared lock order: acquisitions must nest in strictly increasing
   rank.  Outermost (held across slow work) ranks low; leaf counter
   locks rank high.  Names are per-file mutex field/binding names; the
   path-independent order_* entries exist for the lint fixtures.  This
   is the static twin of the runtime order graph in Dt_util.Sync. *)
let lock_ranks =
  [
    ("", "order_lo", 10);
    ("", "order_mid", 20);
    ("", "order_hi", 30);
    ("lib/serve/lifecycle.ml", "pm", 10);
    ("lib/serve/lifecycle.ml", "jmutex", 20);
    ("lib/util/pool.ml", "m", 30);
    ("lib/difftune/simcache.ml", "m", 40);
    ("lib/serve/breaker.ml", "m", 50);
    ("lib/util/faultsim.ml", "m", 55);
    ("lib/serve/runtime.ml", "m", 60);
  ]

let rank_of path name =
  List.find_map
    (fun (p, n, r) ->
      if String.equal n name && (p = "" || contains path p) then Some r
      else None)
    lock_ranks

(* Cross-module calls that acquire a lock internally ("point"
   acquisitions): calling one while holding a higher- or equal-ranked
   lock is the stats_pairs class of inversion — the callee's lock nests
   inside the caller's.  Thunk arguments are NOT treated as running
   under the callee's lock (Simcache computes outside its mutex). *)
let call_locks =
  [
    ( "Breaker",
      [ "state"; "acquire"; "success"; "failure"; "counters" ],
      "breaker.m", 50 );
    ( "Simcache",
      [ "find"; "add"; "find_or_add"; "hits"; "misses"; "length" ],
      "simcache.m", 40 );
    ("Pool", [ "run"; "shutdown"; "suppressed_errors" ], "pool.m", 30);
    ( "Faultsim",
      [ "fire"; "fire_exn"; "arm"; "configure"; "clear"; "hits" ],
      "faultsim.m", 55 );
  ]

let unguarded_mutation_rule =
  {
    name = "unguarded-mutation";
    summary =
      "mutation of a lock-guarded field outside its lock scope \
       (with_lock/locked thunk, raw lock..unlock sequence, a *_locked \
       helper, or the constructor); the dt_race catalog lists the \
       guarded fields per file";
    in_scope =
      (fun path -> List.exists (fun (p, _) -> contains path p) guarded_fields);
    whitelist = [];
  }

let lock_no_protect_rule =
  {
    name = "lock-no-protect";
    summary =
      "raw Mutex.lock/Sync.lock not immediately followed by Fun.protect \
       ~finally:unlock; an exception between lock and unlock leaves the \
       mutex held forever — use Sync.with_lock or the lock-then-protect \
       idiom";
    in_scope = everywhere;
    whitelist =
      [
        ( "lib/util/sync.ml",
          "the instrumented lock implementation itself: lock/unlock here \
           are the primitives the protected idiom is built from" );
        ( "lib/util/pool.ml",
          "the worker handshake must interleave lock/wait/unlock across \
           a condition loop; the critical sections are exception-free by \
           construction (exec catches worker exceptions)" );
      ];
  }

let blocking_under_lock_rule =
  {
    name = "blocking-under-lock";
    summary =
      "blocking call (Unix I/O or sleep, Domain.join, clock sleep) while \
       a lock is held serializes every other holder; Condition/Sync.wait \
       outside a predicate while-loop misses spurious wakeups";
    in_scope = everywhere;
    whitelist =
      [
        ( "lib/util/sync.ml",
          "Sync.wait is the instrumented wrapper around Condition.wait; \
           its callers supply the predicate loop" );
      ];
  }

let lock_order_rule =
  {
    name = "lock-order";
    summary =
      "nested lock acquisition violating the declared rank order \
       (lifecycle.pm outermost .. runtime.m innermost; see \
       Lint.lock_ranks) or re-acquiring a lock already held; these are \
       the deadlocks Dt_util.Sync.Lock_cycle catches dynamically";
    in_scope = everywhere;
    whitelist = [];
  }

let atomic_rmw_rule =
  {
    name = "atomic-rmw";
    summary =
      "Atomic.set whose value expression reads Atomic.get of the same \
       atomic: a lost-update read-modify-write — use fetch_and_add, \
       exchange, or a compare_and_set loop";
    in_scope = everywhere;
    whitelist = [];
  }

let rules =
  [
    float_eq_rule;
    catch_all_rule;
    hashtbl_order_rule;
    unsafe_index_rule;
    bare_eprintf_rule;
    gemv_batch_rule;
    tape_op_loop_rule;
    unguarded_mutation_rule;
    lock_no_protect_rule;
    blocking_under_lock_rule;
    lock_order_rule;
    atomic_rmw_rule;
  ]

(* ---- detection helpers ---- *)

let last_of = function
  | Longident.Lident s | Longident.Ldot (_, s) -> Some s
  | Longident.Lapply _ -> None

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* Syntactic "this expression is a float": literal, float operator
   application, or a Float.* call.  Conservative on purpose — type
   information is not available at the AST level. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, args) -> (
      match ident_of f with
      | Some (Longident.Lident ("~-." | "~+.")) -> (
          match args with [ (_, a) ] -> floatish a | _ -> false)
      | Some (Longident.Lident ("+." | "-." | "*." | "/." | "**")) -> true
      | Some (Longident.Lident ("float_of_int" | "sqrt" | "exp" | "log")) ->
          true
      | Some (Longident.Ldot (Longident.Lident "Float", _)) -> true
      | _ -> false)
  | _ -> false

let is_poly_eq li =
  match li with
  | Longident.Lident ("=" | "<>")
  | Longident.Ldot (Longident.Lident "Stdlib", ("=" | "<>")) ->
      true
  | _ -> false

let rec pattern_catches_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

(* ---- lock-discipline detection helpers ---- *)

(* Name of a mutex expression: the last field/ident component, so
   [t.m] -> "m", [t.pm] -> "pm", [order_lo] -> "order_lo". *)
let lock_name_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last_of txt
  | Pexp_field (_, { txt; _ }) -> last_of txt
  | _ -> None

(* [Mutex.lock]/[Sync.lock] application (raw acquisition). *)
let is_raw_lock e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_of f with
      | Some (Longident.Ldot (q, "lock")) -> (
          match last_of q with Some ("Mutex" | "Sync") -> true | _ -> false)
      | _ -> false)
  | _ -> false

let is_fun_protect e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_of f with
      | Some (Longident.Ldot (Longident.Lident "Fun", "protect")) -> true
      | _ -> false)
  | _ -> false

(* Helper applications whose function argument runs with the lock held:
   [Sync.with_lock m f], the per-module [locked] wrappers,
   [Mutex.protect m f], and Sync's own [glocked]. *)
let scope_helper f =
  match ident_of f with
  | Some li -> (
      match last_of li with
      | Some (("with_lock" | "locked" | "glocked") as h) -> Some h
      | Some "protect" -> (
          match li with
          | Longident.Ldot (q, _) -> (
              match last_of q with Some "Mutex" -> Some "protect" | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Which lock a scope helper acquires.  The [locked t f] wrappers in
   runtime/breaker/simcache/faultsim close over a fixed [m] field;
   elsewhere ([lifecycle], fixtures) the first argument IS the mutex. *)
let scope_lock_name path helper args =
  let from_first_arg () =
    match args with (_, a) :: _ -> lock_name_of a | [] -> None
  in
  match helper with
  | "with_lock" | "protect" -> from_first_arg ()
  | "locked" ->
      if
        List.exists (contains path)
          [
            "lib/serve/runtime.ml"; "lib/serve/breaker.ml";
            "lib/difftune/simcache.ml"; "lib/util/faultsim.ml";
          ]
      then Some "m"
      else from_first_arg ()
  | _ -> None

let blocking_unix_calls =
  [
    "sleep"; "sleepf"; "select"; "read"; "write"; "accept"; "connect";
    "recv"; "send"; "wait"; "waitpid"; "system";
  ]

(* Stable textual form of a simple access path ([x], [t.current]);
   [None] for anything more complex, which the atomic-rmw rule then
   conservatively ignores. *)
let rec expr_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match txt with
      | Longident.Lapply _ -> None
      | _ -> Some (String.concat "." (Longident.flatten txt)))
  | Pexp_field (b, { txt; _ }) -> (
      match (expr_path b, last_of txt) with
      | Some bp, Some f -> Some (bp ^ "." ^ f)
      | _ -> None)
  | _ -> None

let is_atomic_qual q =
  match last_of q with Some ("Atomic" | "A") -> true | _ -> false

(* Does [v] contain [Atomic.get] of the access path [tp]? *)
let expr_reads_atomic tp v =
  let found = ref false in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_apply (g, (_, a) :: _) -> (
        match ident_of g with
        | Some (Longident.Ldot (q, "get")) when is_atomic_qual q -> (
            match expr_path a with
            | Some ap when String.equal ap tp -> found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it v;
  !found

(* ---- the walk ---- *)

let lint_ast ~path ?only ast =
  let findings = ref [] and suppressed = ref 0 in
  let active rule =
    match only with None -> true | Some names -> List.mem rule.name names
  in
  let add rule loc msg =
    if active rule && rule.in_scope path then
      if List.exists (fun (frag, _) -> contains path frag) rule.whitelist then
        incr suppressed
      else
        let pos = loc.Location.loc_start in
        findings :=
          {
            rule = rule.name;
            file = path;
            line = pos.Lexing.pos_lnum;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            msg;
          }
          :: !findings
  in
  let for_depth = ref 0 in
  (* Lock-discipline walk state.  [lock_depth] counts every way of being
     inside a critical section (thunk helpers, raw lock sequences,
     *_locked helpers, constructors); [lock_stack] tracks only named
     acquisitions from thunk helpers, innermost first, for the order
     rule; [while_depth] distinguishes predicate-looped waits.
     [sanctioned] holds source positions of raw lock calls immediately
     followed by Fun.protect (the approved idiom). *)
  let lock_depth = ref 0 in
  let while_depth = ref 0 in
  let lock_stack : (string * int option) list ref = ref [] in
  let sanctioned : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let pos_key loc =
    let p = loc.Location.loc_start in
    (p.Lexing.pos_lnum, p.Lexing.pos_cnum)
  in
  let guarded = fields_for path in
  let check_order loc name rank =
    if List.exists (fun (n, _) -> String.equal n name) !lock_stack then
      add lock_order_rule loc
        (Printf.sprintf
           "lock %s acquired while already held; relocking a non-reentrant \
            mutex self-deadlocks"
           name)
    else
      match rank with
      | None -> ()
      | Some r ->
          List.iter
            (fun (n0, r0) ->
              match r0 with
              | Some r0 when r0 >= r ->
                  add lock_order_rule loc
                    (Printf.sprintf
                       "lock %s (rank %d) acquired while holding %s (rank \
                        %d); the declared order acquires strictly \
                        increasing ranks"
                       name r n0 r0)
              | _ -> ())
            !lock_stack
  in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_apply (f, [ (_, a); (_, b) ])
      when (match ident_of f with
           | Some li -> is_poly_eq li
           | None -> false)
           && (floatish a || floatish b) ->
        add float_eq_rule e.pexp_loc
          "float compared with polymorphic =/<>; use Float.equal, an \
           epsilon, or classify with Float.classify_float"
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if pattern_catches_all c.pc_lhs then
              add catch_all_rule c.pc_lhs.ppat_loc
                "catch-all exception handler ('with _ ->') swallows \
                 unexpected failures; name the exceptions this code can \
                 actually recover from")
          cases
    | Pexp_apply (f, [ (_, target); (_, v) ])
      when match ident_of f with
           | Some (Longident.Ldot (q, "set")) -> is_atomic_qual q
           | _ -> false -> (
        match expr_path target with
        | Some tp when expr_reads_atomic tp v ->
            add atomic_rmw_rule e.pexp_loc
              (Printf.sprintf
                 "Atomic.set %s reads Atomic.get %s in its value: a \
                  concurrent writer between the get and the set is \
                  silently lost — use fetch_and_add, exchange, or a \
                  compare_and_set loop"
                 tp tp)
        | _ -> ())
    | Pexp_apply _ when is_raw_lock e ->
        if not (Hashtbl.mem sanctioned (pos_key e.pexp_loc)) then
          add lock_no_protect_rule e.pexp_loc
            "raw lock acquisition without an immediate Fun.protect \
             ~finally:unlock; an exception in the critical section leaves \
             the mutex held — use Sync.with_lock or lock-then-protect"
    | Pexp_apply (f, _)
      when (match ident_of f with
           | Some (Longident.Ldot (q, "wait")) -> (
               match last_of q with
               | Some ("Condition" | "Sync") -> true
               | _ -> false)
           | _ -> false)
           && !while_depth = 0 ->
        add blocking_under_lock_rule e.pexp_loc
          "condition wait outside a predicate while-loop; wakeups can be \
           spurious and the guarded predicate must be re-checked after \
           every wait"
    | Pexp_apply (f, _)
      when (match f.pexp_desc with
           | Pexp_field (_, { txt; _ }) -> last_of txt = Some "sleep"
           | _ -> false)
           && !lock_depth > 0 ->
        add blocking_under_lock_rule e.pexp_loc
          "clock sleep while holding a lock stalls every other domain \
           waiting on it; sleep outside the critical section"
    | Pexp_apply (f, _) when !lock_stack <> [] -> (
        match ident_of f with
        | Some (Longident.Ldot (q, fn)) -> (
            match last_of q with
            | Some m -> (
                match
                  List.find_opt
                    (fun (mn, fns, _, _) ->
                      String.equal mn m && List.mem fn fns)
                    call_locks
                with
                | Some (_, _, lockname, r) ->
                    List.iter
                      (fun (n0, r0) ->
                        match r0 with
                        | Some r0 when r0 >= r ->
                            add lock_order_rule e.pexp_loc
                              (Printf.sprintf
                                 "%s.%s acquires %s (rank %d) while \
                                  holding %s (rank %d); hoist the call \
                                  out of the critical section (the \
                                  stats_pairs inversion class)"
                                 m fn lockname r n0 r0)
                        | _ -> ())
                      !lock_stack
                | None -> ())
            | None -> ())
        | _ -> ())
    | Pexp_setfield (_, { txt = fld; _ }, _)
      when !lock_depth = 0
           && (match last_of fld with
              | Some f -> List.mem f guarded
              | None -> false) -> (
        match last_of fld with
        | Some f ->
            add unguarded_mutation_rule e.pexp_loc
              (Printf.sprintf
                 "field %s is lock-guarded (dt_race catalog) but mutated \
                  outside any lock scope; wrap the mutation in \
                  with_lock, or mark the helper *_locked if its caller \
                  holds the lock"
                 f)
        | None -> ())
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Hashtbl", fn); loc }
      when fn = "iter" || fn = "fold" ->
        add hashtbl_order_rule loc
          (Printf.sprintf
             "Hashtbl.%s iterates in unspecified order inside the \
              deterministic numeric substrate; sort keys first or use an \
              ordered container"
             fn)
    | Pexp_ident { txt; loc } -> (
        (match last_of txt with
        | Some
            (("unsafe_get" | "unsafe_set" | "unsafe_get1" | "unsafe_set1"
             | "unsafe_blit" | "unsafe_fill") as fn) ->
            add unsafe_index_rule loc
              (Printf.sprintf
                 "%s outside the audited kernel whitelist; a bad index \
                  silently corrupts shared arena memory"
                 fn)
        | _ -> ());
        (match last_of txt with
        | Some (("gemv" | "gemv_t" | "matvec") as fn) when !for_depth > 0 ->
            add gemv_batch_rule loc
              (Printf.sprintf
                 "%s inside a for loop runs one row at a time; batch the \
                  rows and call gemm/matmul once per step"
                 fn)
        | _ -> ());
        (match txt with
        | Longident.Ldot (qual, fn) when !for_depth > 0 -> (
            let is_ad =
              match qual with
              | Longident.Lident "Ad"
              | Longident.Ldot (_, "Ad")
              | Longident.Lident "Dt_autodiff" ->
                  true
              | _ -> false
            in
            match fn with
            | ( "matvec" | "matmul" | "row" | "add" | "mul" | "concat"
              | "slice" | "sigmoid" | "tanh_" | "relu" | "exp_" | "affine"
              | "max2" | "div" | "sum_all" | "reduce_max" | "abs_" | "scale"
              | "mape" | "add_row" | "stack_rows" | "cols" | "concat_cols"
              | "row_blend" | "mape_batch" | "constant" | "scalar" )
              when is_ad ->
                add tape_op_loop_rule loc
                  (Printf.sprintf
                     "Ad.%s constructs a tape op on every loop iteration; \
                      record the trace once under Ad.with_plan and replay \
                      the compiled plan"
                     fn)
            | _ -> ())
        | _ -> ());
        (if !lock_depth > 0 then
           match txt with
           | Longident.Ldot (Longident.Lident "Unix", fn)
             when List.mem fn blocking_unix_calls ->
               add blocking_under_lock_rule loc
                 (Printf.sprintf
                    "Unix.%s can block indefinitely while a lock is held; \
                     move the call outside the critical section"
                    fn)
           | Longident.Ldot (Longident.Lident "Domain", "join") ->
               add blocking_under_lock_rule loc
                 "Domain.join while a lock is held deadlocks if the joined \
                  domain needs the same lock; join outside the critical \
                  section"
           | _ -> ());
        match txt with
        | Longident.Ldot (Longident.Lident ("Printf" | "Format"), "eprintf")
        | Longident.Lident "eprintf" ->
            add bare_eprintf_rule loc
              "bare eprintf; route diagnostics through Dt_util.Log or a \
               config.log callback"
        | _ -> ())
    | _ -> ());
    match e.pexp_desc with
    | Pexp_for _ ->
        incr for_depth;
        Ast_iterator.default_iterator.expr sub e;
        decr for_depth
    | Pexp_while _ ->
        incr while_depth;
        Ast_iterator.default_iterator.expr sub e;
        decr while_depth
    | Pexp_sequence (e1, e2) when is_raw_lock e1 ->
        (* Everything sequenced after a raw lock is treated as inside the
           critical section (over-approximate past the unlock — sound for
           flagging, a raw-lock function rarely mutates after unlock). *)
        if is_fun_protect e2 then
          Hashtbl.replace sanctioned (pos_key e1.pexp_loc) ();
        sub.expr sub e1;
        incr lock_depth;
        sub.expr sub e2;
        decr lock_depth
    | Pexp_apply (f, args) when scope_helper f <> None ->
        let helper = Option.get (scope_helper f) in
        let entered =
          match scope_lock_name path helper args with
          | Some name ->
              let r = rank_of path name in
              check_order e.pexp_loc name r;
              lock_stack := (name, r) :: !lock_stack;
              true
          | None -> false
        in
        sub.expr sub f;
        incr lock_depth;
        List.iter (fun (_, a) -> sub.expr sub a) args;
        decr lock_depth;
        if entered then lock_stack := List.tl !lock_stack
    | _ -> Ast_iterator.default_iterator.expr sub e
  in
  (* Bindings named [*_locked] (caller holds the lock by convention),
     [create] (the structure has not escaped its constructor), and the
     lock-helper definitions themselves run in lock context. *)
  let value_binding sub vb =
    let exempt =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt = n; _ } ->
          let l = String.length n in
          String.equal n "create" || String.equal n "locked"
          || String.equal n "with_lock"
          || (l >= 7 && String.equal (String.sub n (l - 7) 7) "_locked")
      | _ -> false
    in
    if exempt then begin
      incr lock_depth;
      Ast_iterator.default_iterator.value_binding sub vb;
      decr lock_depth
    end
    else Ast_iterator.default_iterator.value_binding sub vb
  in
  let iterator = { Ast_iterator.default_iterator with expr; value_binding } in
  iterator.structure iterator ast;
  let ordered =
    List.sort
      (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
      !findings
  in
  (ordered, !suppressed)

let lint_string ~path ?only src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> lint_ast ~path ?only ast
  | exception Syntaxerr.Error _ ->
      ( [
          {
            rule = "parse-error";
            file = path;
            line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
            col = 0;
            msg = "file does not parse as OCaml; dt_lint cannot analyse it";
          };
        ],
        0 )
  | exception e ->
      ( [
          {
            rule = "parse-error";
            file = path;
            line = 1;
            col = 0;
            msg = Printf.sprintf "parser failed: %s" (Printexc.to_string e);
          };
        ],
        0 )

let lint_file ?only path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  lint_string ~path ?only src
