(* AST-level repo lint for the DiffTune numeric substrate.

   Built directly on compiler-libs.common (Parse + Ast_iterator), no
   external dependencies.  The rules are repo-specific: each encodes a
   defect class that has bitten (or nearly bitten) this codebase — see
   DESIGN.md "Correctness tooling" for the catalogue and the whitelist
   policy.  The [bin/dt_lint] driver walks lib/ and bin/ and fails the
   @lint alias on any non-whitelisted finding. *)

open Parsetree

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type rule = {
  name : string;
  summary : string;
  in_scope : string -> bool; (* normalized repo-relative path *)
  whitelist : (string * string) list; (* path fragment, justification *)
}

(* [contains hay needle] — plain substring test, so whitelist entries can
   be directory prefixes ("lib/util/") or file suffixes alike. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let everywhere _ = true

(* The paths where iteration order feeds gradient reduction, pooled
   work distribution, or checkpoint contents — nondeterminism there
   breaks the bit-identical-across-domain-counts guarantee from PR 1. *)
let substrate_paths path =
  List.exists
    (fun p -> contains path p)
    [
      "lib/util/";
      "lib/tensor/";
      "lib/autodiff/";
      "lib/nn/";
      "lib/surrogate/";
      "lib/difftune/";
    ]

let float_eq_rule =
  {
    name = "float-eq";
    summary =
      "polymorphic =/<> against a float expression; exact float equality \
       is almost always a rounding bug — use Float.equal or an epsilon";
    in_scope = everywhere;
    whitelist =
      [
        ( "lib/tensor/tensor.ml",
          "beta = 0.0 / x <> 0.0 dispatch in the gemv/gemv_t/ger kernels is \
           an intentional exact-value fast path (skip-zero, \
           overwrite-vs-accumulate), not a tolerance comparison" );
        ( "lib/tensor/gemm.ml",
          "beta = 0.0 / beta <> 1.0 dispatch in the gemm front end is the \
           same exact-value overwrite-vs-accumulate rule the gemv family \
           uses, not a tolerance comparison" );
      ];
  }

let catch_all_rule =
  {
    name = "catch-all";
    summary =
      "try ... with _ -> swallows every exception, including \
       Out_of_memory, Stack_overflow and injected faults; match the \
       exceptions you expect, or bind and reraise";
    in_scope = everywhere;
    whitelist = [];
  }

let hashtbl_order_rule =
  {
    name = "hashtbl-order";
    summary =
      "Hashtbl.iter/fold enumerate in unspecified hash order; in \
       gradient-reduction / pool / checkpoint paths this breaks the \
       deterministic ordered reduction — iterate a sorted or insertion- \
       ordered structure instead";
    in_scope = substrate_paths;
    whitelist = [];
  }

let unsafe_index_rule =
  {
    name = "unsafe-index";
    summary =
      "unsafe_get/unsafe_set skip bounds checks; outside the audited \
       kernel files an index bug corrupts arena memory silently (the \
       PR 2 gemv class) — use checked accessors";
    in_scope = everywhere;
    whitelist =
      [
        ("lib/tensor/tensor.ml", "audited kernel file (gemv/ger/axpy loops)");
        ( "lib/tensor/gemm.ml",
          "audited kernel file (gemm front end: beta prescale over \
           shape-checked destinations; the inner loops live in \
           gemm_stubs.c behind the same shape checks)" );
        ("lib/autodiff/ad.ml", "audited kernel file (tape op forward/backward)");
        ("lib/nn/nn.ml",
         "audited kernel file (Adam update; checked path under sanitize)");
      ];
  }

let bare_eprintf_rule =
  {
    name = "bare-eprintf";
    summary =
      "direct eprintf scatters diagnostics; route library messages \
       through Dt_util.Log (or an explicit config.log callback) so \
       output stays controllable";
    in_scope = everywhere;
    whitelist =
      [ ("lib/util/", "Dt_util.Log owns the actual stderr writes") ];
  }

(* The batched compute path (PR 5) exists so per-sample work becomes
   one gemm per timestep; a gemv/matvec issued from inside a loop is
   the exact per-row pattern it replaces and costs the SIMD width. *)
let gemv_batch_rule =
  {
    name = "gemv-batch-loop";
    summary =
      "per-row gemv/matvec issued from inside a for loop in the batched \
       network code; batch the rows and make one gemm/matmul call per \
       step instead";
    in_scope = (fun path -> contains path "lib/nn/");
    whitelist = [];
  }

(* The compiled executor (PR 6) records a trace once and replays a
   static plan; network code that issues Ad tape-op constructors from
   inside a for loop on a per-call path pays the interpreter's per-op
   allocation and dispatch on every iteration instead.  Loops that
   build a trace *under* an Ad.with_plan capture are fine — they run
   once per record — which is exactly what the whitelisted files do. *)
let tape_op_loop_rule =
  {
    name = "tape-op-loop";
    summary =
      "Ad tape-op constructor called inside a for loop in network code; \
       hot paths should record once under Ad.with_plan and replay the \
       compiled plan instead of re-issuing per-op interpreter calls";
    in_scope =
      (fun path -> contains path "lib/nn/" || contains path "lib/surrogate/");
    whitelist =
      [
        ( "lib/nn/nn.ml",
          "LSTM/MLP step loops build the trace exactly once per capture; \
           the Model entry points record them under Ad.with_plan and \
           replay the sealed plan on every later call" );
        ( "lib/surrogate/model.ml",
          "trace closures here run inside Ad.with_plan (plan cache keyed \
           by shape profile), so their loops execute once per record, \
           not once per prediction" );
      ];
  }

let rules =
  [
    float_eq_rule;
    catch_all_rule;
    hashtbl_order_rule;
    unsafe_index_rule;
    bare_eprintf_rule;
    gemv_batch_rule;
    tape_op_loop_rule;
  ]

(* ---- detection helpers ---- *)

let last_of = function
  | Longident.Lident s | Longident.Ldot (_, s) -> Some s
  | Longident.Lapply _ -> None

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* Syntactic "this expression is a float": literal, float operator
   application, or a Float.* call.  Conservative on purpose — type
   information is not available at the AST level. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, args) -> (
      match ident_of f with
      | Some (Longident.Lident ("~-." | "~+.")) -> (
          match args with [ (_, a) ] -> floatish a | _ -> false)
      | Some (Longident.Lident ("+." | "-." | "*." | "/." | "**")) -> true
      | Some (Longident.Lident ("float_of_int" | "sqrt" | "exp" | "log")) ->
          true
      | Some (Longident.Ldot (Longident.Lident "Float", _)) -> true
      | _ -> false)
  | _ -> false

let is_poly_eq li =
  match li with
  | Longident.Lident ("=" | "<>")
  | Longident.Ldot (Longident.Lident "Stdlib", ("=" | "<>")) ->
      true
  | _ -> false

let rec pattern_catches_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

(* ---- the walk ---- *)

let lint_ast ~path ast =
  let findings = ref [] and suppressed = ref 0 in
  let add rule loc msg =
    if rule.in_scope path then
      if List.exists (fun (frag, _) -> contains path frag) rule.whitelist then
        incr suppressed
      else
        let pos = loc.Location.loc_start in
        findings :=
          {
            rule = rule.name;
            file = path;
            line = pos.Lexing.pos_lnum;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            msg;
          }
          :: !findings
  in
  let for_depth = ref 0 in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_apply (f, [ (_, a); (_, b) ])
      when (match ident_of f with
           | Some li -> is_poly_eq li
           | None -> false)
           && (floatish a || floatish b) ->
        add float_eq_rule e.pexp_loc
          "float compared with polymorphic =/<>; use Float.equal, an \
           epsilon, or classify with Float.classify_float"
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            if pattern_catches_all c.pc_lhs then
              add catch_all_rule c.pc_lhs.ppat_loc
                "catch-all exception handler ('with _ ->') swallows \
                 unexpected failures; name the exceptions this code can \
                 actually recover from")
          cases
    | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Hashtbl", fn); loc }
      when fn = "iter" || fn = "fold" ->
        add hashtbl_order_rule loc
          (Printf.sprintf
             "Hashtbl.%s iterates in unspecified order inside the \
              deterministic numeric substrate; sort keys first or use an \
              ordered container"
             fn)
    | Pexp_ident { txt; loc } -> (
        (match last_of txt with
        | Some
            (("unsafe_get" | "unsafe_set" | "unsafe_get1" | "unsafe_set1"
             | "unsafe_blit" | "unsafe_fill") as fn) ->
            add unsafe_index_rule loc
              (Printf.sprintf
                 "%s outside the audited kernel whitelist; a bad index \
                  silently corrupts shared arena memory"
                 fn)
        | _ -> ());
        (match last_of txt with
        | Some (("gemv" | "gemv_t" | "matvec") as fn) when !for_depth > 0 ->
            add gemv_batch_rule loc
              (Printf.sprintf
                 "%s inside a for loop runs one row at a time; batch the \
                  rows and call gemm/matmul once per step"
                 fn)
        | _ -> ());
        (match txt with
        | Longident.Ldot (qual, fn) when !for_depth > 0 -> (
            let is_ad =
              match qual with
              | Longident.Lident "Ad"
              | Longident.Ldot (_, "Ad")
              | Longident.Lident "Dt_autodiff" ->
                  true
              | _ -> false
            in
            match fn with
            | ( "matvec" | "matmul" | "row" | "add" | "mul" | "concat"
              | "slice" | "sigmoid" | "tanh_" | "relu" | "exp_" | "affine"
              | "max2" | "div" | "sum_all" | "reduce_max" | "abs_" | "scale"
              | "mape" | "add_row" | "stack_rows" | "cols" | "concat_cols"
              | "row_blend" | "mape_batch" | "constant" | "scalar" )
              when is_ad ->
                add tape_op_loop_rule loc
                  (Printf.sprintf
                     "Ad.%s constructs a tape op on every loop iteration; \
                      record the trace once under Ad.with_plan and replay \
                      the compiled plan"
                     fn)
            | _ -> ())
        | _ -> ());
        match txt with
        | Longident.Ldot (Longident.Lident ("Printf" | "Format"), "eprintf")
        | Longident.Lident "eprintf" ->
            add bare_eprintf_rule loc
              "bare eprintf; route diagnostics through Dt_util.Log or a \
               config.log callback"
        | _ -> ())
    | _ -> ());
    match e.pexp_desc with
    | Pexp_for _ ->
        incr for_depth;
        Ast_iterator.default_iterator.expr sub e;
        decr for_depth
    | _ -> Ast_iterator.default_iterator.expr sub e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator ast;
  let ordered =
    List.sort
      (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
      !findings
  in
  (ordered, !suppressed)

let lint_string ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> lint_ast ~path ast
  | exception Syntaxerr.Error _ ->
      ( [
          {
            rule = "parse-error";
            file = path;
            line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
            col = 0;
            msg = "file does not parse as OCaml; dt_lint cannot analyse it";
          };
        ],
        0 )
  | exception e ->
      ( [
          {
            rule = "parse-error";
            file = path;
            line = 1;
            col = 0;
            msg = Printf.sprintf "parser failed: %s" (Printexc.to_string e);
          };
        ],
        0 )

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  lint_string ~path src
