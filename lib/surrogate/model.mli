(** The differentiable surrogate: a modified Ithemal (paper Figure 3).

    Architecture, following Mendis et al. with the paper's two changes:
    - a token-level stacked LSTM turns each instruction's canonicalized
      token embeddings into an instruction vector;
    - {b change 1}: both LSTMs are stacks (the paper uses 4; depth is a
      config knob and an ablation axis);
    - {b change 2}: the proposed simulator parameters are concatenated to
      each instruction vector (per-instruction parameters) and to every
      instruction (global parameters) before the instruction-level LSTM;
    - a fully connected head maps the block vector to a timing.

    With [with_params = false] the same network is exactly an Ithemal
    model — the paper's learned baseline — trained directly on ground
    truth. *)

type config = {
  embed_dim : int;
  token_hidden : int;
  instr_hidden : int;
  token_layers : int;
  instr_layers : int;
  with_params : bool;
  per_instr_params : int;  (** width of the per-instruction parameter vector *)
  global_params : int;     (** width of the global parameter vector *)
  feature_width : int;
      (** width of the differentiable analytic-bound vector; 0 selects the
          pure-LSTM (paper-architecture) surrogate, > 0 the
          physics-informed surrogate whose prediction is
          [max(bounds) * exp(correction)] with the correction produced by
          the network (see DESIGN.md on this scaled-compute
          substitution) *)
  head_hidden : int;
      (** hidden width of the prediction head; 0 = a single linear layer
          (the paper's fully connected layer), > 0 = a two-layer MLP *)
}

(** Paper-shaped configuration scaled for CPU training: 4-stack LSTMs,
    llvm-mca's 15 per-instruction + 2 global parameters. *)
val default_config : config

(** Ithemal-baseline configuration (no parameter inputs). *)
val ithemal_config : config

type t

val create : ?config:config -> Dt_util.Rng.t -> t
val config : t -> config
val store : t -> Dt_nn.Nn.Store.t

(** Parameter inputs for one block: [per_instr.(i)] is the (normalized)
    parameter vector node for instruction [i]; [global] the global
    vector node.  Built from constants during surrogate training and from
    the learnable parameter-table leaves during parameter optimization. *)
type param_inputs = {
  per_instr : Dt_autodiff.Ad.node array;
  global : Dt_autodiff.Ad.node option;  (** [None] when [global_params = 0] *)
}

(** [predict t ctx block ~params ~features] — the predicted timing node.
    [params] must be [Some] iff the config has [with_params]; [features]
    must be [Some] (a [feature_width] vector node of analytic bounds) iff
    [feature_width > 0]. *)
val predict :
  t -> Dt_autodiff.Ad.ctx -> Dt_x86.Block.t -> params:param_inputs option ->
  features:Dt_autodiff.Ad.node option -> Dt_autodiff.Ad.node

(** Convenience: scalar prediction without gradient use; [features] are
    plain floats. *)
val predict_value :
  t -> Dt_x86.Block.t -> params:(float array array * float array) option ->
  ?features:float array -> unit -> float

(* ---- batched path ---- *)

(** One element of a batched forward: the block plus the plain-float
    parameter and feature vectors the per-sequence path would have fed
    as constants.  (Parameter-table optimization, where gradients flow
    {e into} the parameters, keeps the per-sequence {!predict} path.) *)
type batch_sample = {
  bblock : Dt_x86.Block.t;
  bparams : (float array array * float array) option;
      (** per-instruction rows and the global vector; [Some] iff the
          config has [with_params] *)
  bfeatures : float array option;
      (** analytic bounds; [Some] iff [feature_width > 0] *)
}

(** [forward_batch t ctx samples] — predicted timings for B blocks as a
    [B x 1] node (row [i] is sample [i]).  Token and instruction
    sequences are packed into power-of-two length buckets so every LSTM
    timestep is one [B x hidden] gemm; padding masks make row [i]'s
    value bit-identical to {!predict} on sample [i] alone.  Does not
    reset [ctx]. *)
val forward_batch : t -> Dt_autodiff.Ad.ctx -> batch_sample array -> Dt_autodiff.Ad.node

(** [train_batch t ctx samples ~targets] resets [ctx], runs
    {!forward_batch}, sums the per-sample MAPE losses ([targets] must be
    positive) and runs backward, accumulating weight gradients — exactly
    the sum of the per-sequence gradients.  Returns the per-sample
    losses. *)
val train_batch :
  t -> Dt_autodiff.Ad.ctx -> batch_sample array -> targets:float array ->
  float array

(** [predict_batch_value t samples] — gradient-free batched prediction
    on the model's scratch workspace (not thread-safe; one caller at a
    time, like {!predict_value}). *)
val predict_batch_value : t -> batch_sample array -> float array
