module T = Dt_tensor.Tensor
module Ad = Dt_autodiff.Ad
module Nn = Dt_nn.Nn

type config = {
  embed_dim : int;
  token_hidden : int;
  instr_hidden : int;
  token_layers : int;
  instr_layers : int;
  with_params : bool;
  per_instr_params : int;
  global_params : int;
  feature_width : int;
  head_hidden : int;
}

let default_config =
  {
    embed_dim = 16;
    token_hidden = 32;
    instr_hidden = 32;
    token_layers = 4;
    instr_layers = 4;
    with_params = true;
    per_instr_params = 15;
    global_params = 2;
    feature_width = 0;
    head_hidden = 0;
  }

let ithemal_config =
  { default_config with with_params = false; per_instr_params = 0; global_params = 0 }

type t = {
  cfg : config;
  store : Nn.Store.t;
  embedding : Nn.Embedding.t;
  token_lstm : Nn.Lstm.t;
  instr_lstm : Nn.Lstm.t;
  head1 : Nn.Linear.t;
  head2 : Nn.Linear.t option;
  scratch : Ad.ctx;  (** workspace for gradient-free {!predict_value} calls *)
}

let create ?(config = default_config) rng =
  let store = Nn.Store.create () in
  let embedding =
    Nn.Embedding.create store rng ~name:"embed" ~count:Tokenizer.vocab_size
      ~dim:config.embed_dim
  in
  let token_lstm =
    Nn.Lstm.create store rng ~name:"token" ~input:config.embed_dim
      ~hidden:config.token_hidden ~layers:config.token_layers
  in
  let instr_input =
    config.token_hidden
    + if config.with_params then config.per_instr_params + config.global_params
      else 0
  in
  let instr_lstm =
    Nn.Lstm.create store rng ~name:"instr" ~input:instr_input
      ~hidden:config.instr_hidden ~layers:config.instr_layers
  in
  let head_input = config.instr_hidden + config.feature_width in
  let head1, head2 =
    if config.head_hidden = 0 then
      (Nn.Linear.create store rng ~name:"head" ~input:head_input ~output:1, None)
    else
      ( Nn.Linear.create store rng ~name:"head1" ~input:head_input
          ~output:config.head_hidden,
        Some
          (Nn.Linear.create store rng ~name:"head2" ~input:config.head_hidden
             ~output:1) )
  in
  {
    cfg = config;
    store;
    embedding;
    token_lstm;
    instr_lstm;
    head1;
    head2;
    scratch = Ad.new_ctx ();
  }

let config t = t.cfg
let store t = t.store

type param_inputs = { per_instr : Ad.node array; global : Ad.node option }

let predict t ctx (block : Dt_x86.Block.t) ~params ~features =
  (match (t.cfg.with_params, params) with
  | true, None -> invalid_arg "Model.predict: parameter inputs required"
  | false, Some _ -> invalid_arg "Model.predict: unexpected parameter inputs"
  | true, Some p ->
      if Array.length p.per_instr <> Array.length block.instrs then
        invalid_arg "Model.predict: per-instruction parameter count mismatch"
  | false, None -> ());
  (match (t.cfg.feature_width, features) with
  | 0, Some _ -> invalid_arg "Model.predict: unexpected features"
  | 0, None -> ()
  | w, Some f ->
      if Dt_tensor.Tensor.size (Ad.value f) <> w then
        invalid_arg "Model.predict: feature width mismatch"
  | _, None -> invalid_arg "Model.predict: features required");
  let instr_vectors =
    Array.to_list
      (Array.mapi
         (fun i instr ->
           let toks = Tokenizer.tokens instr in
           let embedded =
             List.map (Nn.Embedding.forward t.embedding ctx) toks
           in
           let h = Nn.Lstm.forward t.token_lstm ctx embedded in
           match params with
           | Some p ->
               let parts =
                 match p.global with
                 | Some g -> [ h; p.per_instr.(i); g ]
                 | None -> [ h; p.per_instr.(i) ]
               in
               Ad.concat ctx parts
           | None -> h)
         block.instrs)
  in
  let block_vec = Nn.Lstm.forward t.instr_lstm ctx instr_vectors in
  let head ctx x =
    match t.head2 with
    | None -> Nn.Linear.forward t.head1 ctx x
    | Some h2 ->
        Nn.Linear.forward h2 ctx (Ad.tanh_ ctx (Nn.Linear.forward t.head1 ctx x))
  in
  match features with
  | None -> head ctx block_vec
  | Some f ->
      (* Physics-informed head: the analytic bounds give the base timing;
         the network produces a bounded multiplicative correction. *)
      let base = Ad.max2 ctx (Ad.reduce_max ctx f) (Ad.scalar ctx 0.05) in
      let corr = head ctx (Ad.concat ctx [ block_vec; f ]) in
      (* Clamp the log-correction to [-4, 4] via tanh for stability. *)
      let corr = Ad.scale ctx (Ad.tanh_ ctx (Ad.scale ctx corr 0.25)) 4.0 in
      Ad.mul ctx base (Ad.exp_ ctx corr)

let predict_value t (block : Dt_x86.Block.t) ~params ?features () =
  let ctx = t.scratch in
  Ad.reset ctx;
  let params =
    Option.map
      (fun (per, glob) ->
        {
          per_instr = Array.map (fun v -> Ad.constant ctx (T.vector v)) per;
          global =
            (if Array.length glob = 0 then None
             else Some (Ad.constant ctx (T.vector glob)));
        })
      params
  in
  let features = Option.map (fun f -> Ad.constant ctx (T.vector f)) features in
  Ad.scalar_value (predict t ctx block ~params ~features)
