module T = Dt_tensor.Tensor
module Ad = Dt_autodiff.Ad
module Nn = Dt_nn.Nn

type config = {
  embed_dim : int;
  token_hidden : int;
  instr_hidden : int;
  token_layers : int;
  instr_layers : int;
  with_params : bool;
  per_instr_params : int;
  global_params : int;
  feature_width : int;
  head_hidden : int;
}

let default_config =
  {
    embed_dim = 16;
    token_hidden = 32;
    instr_hidden = 32;
    token_layers = 4;
    instr_layers = 4;
    with_params = true;
    per_instr_params = 15;
    global_params = 2;
    feature_width = 0;
    head_hidden = 0;
  }

let ithemal_config =
  { default_config with with_params = false; per_instr_params = 0; global_params = 0 }

type t = {
  cfg : config;
  store : Nn.Store.t;
  embedding : Nn.Embedding.t;
  token_lstm : Nn.Lstm.t;
  instr_lstm : Nn.Lstm.t;
  head1 : Nn.Linear.t;
  head2 : Nn.Linear.t option;
  scratch : Ad.ctx;  (** workspace for gradient-free {!predict_value} calls *)
  pcache : Ad.plan_cache;  (** compiled plans, one per trace signature *)
}

let create ?(config = default_config) rng =
  let store = Nn.Store.create () in
  let embedding =
    Nn.Embedding.create store rng ~name:"embed" ~count:Tokenizer.vocab_size
      ~dim:config.embed_dim
  in
  let token_lstm =
    Nn.Lstm.create store rng ~name:"token" ~input:config.embed_dim
      ~hidden:config.token_hidden ~layers:config.token_layers
  in
  let instr_input =
    config.token_hidden
    + if config.with_params then config.per_instr_params + config.global_params
      else 0
  in
  let instr_lstm =
    Nn.Lstm.create store rng ~name:"instr" ~input:instr_input
      ~hidden:config.instr_hidden ~layers:config.instr_layers
  in
  let head_input = config.instr_hidden + config.feature_width in
  let head1, head2 =
    if config.head_hidden = 0 then
      (Nn.Linear.create store rng ~name:"head" ~input:head_input ~output:1, None)
    else
      ( Nn.Linear.create store rng ~name:"head1" ~input:head_input
          ~output:config.head_hidden,
        Some
          (Nn.Linear.create store rng ~name:"head2" ~input:config.head_hidden
             ~output:1) )
  in
  {
    cfg = config;
    store;
    embedding;
    token_lstm;
    instr_lstm;
    head1;
    head2;
    scratch = Ad.new_ctx ();
    pcache = Ad.plan_cache ~capacity:64 ();
  }

let config t = t.cfg
let store t = t.store

type param_inputs = { per_instr : Ad.node array; global : Ad.node option }

let predict t ctx (block : Dt_x86.Block.t) ~params ~features =
  (match (t.cfg.with_params, params) with
  | true, None -> invalid_arg "Model.predict: parameter inputs required"
  | false, Some _ -> invalid_arg "Model.predict: unexpected parameter inputs"
  | true, Some p ->
      if Array.length p.per_instr <> Array.length block.instrs then
        invalid_arg "Model.predict: per-instruction parameter count mismatch"
  | false, None -> ());
  (match (t.cfg.feature_width, features) with
  | 0, Some _ -> invalid_arg "Model.predict: unexpected features"
  | 0, None -> ()
  | w, Some f ->
      if Dt_tensor.Tensor.size (Ad.value f) <> w then
        invalid_arg "Model.predict: feature width mismatch"
  | _, None -> invalid_arg "Model.predict: features required");
  let instr_vectors =
    Array.to_list
      (Array.mapi
         (fun i instr ->
           let toks = Tokenizer.tokens instr in
           let embedded =
             List.map (Nn.Embedding.forward t.embedding ctx) toks
           in
           let h = Nn.Lstm.forward t.token_lstm ctx embedded in
           match params with
           | Some p ->
               let parts =
                 match p.global with
                 | Some g -> [ h; p.per_instr.(i); g ]
                 | None -> [ h; p.per_instr.(i) ]
               in
               Ad.concat ctx parts
           | None -> h)
         block.instrs)
  in
  let block_vec = Nn.Lstm.forward t.instr_lstm ctx instr_vectors in
  let head ctx x =
    match t.head2 with
    | None -> Nn.Linear.forward t.head1 ctx x
    | Some h2 ->
        Nn.Linear.forward h2 ctx (Ad.tanh_ ctx (Nn.Linear.forward t.head1 ctx x))
  in
  match features with
  | None -> head ctx block_vec
  | Some f ->
      (* Physics-informed head: the analytic bounds give the base timing;
         the network produces a bounded multiplicative correction. *)
      let base = Ad.max2 ctx (Ad.reduce_max ctx f) (Ad.scalar ctx 0.05) in
      let corr = head ctx (Ad.concat ctx [ block_vec; f ]) in
      (* Clamp the log-correction to [-4, 4] via tanh for stability. *)
      let corr = Ad.scale ctx (Ad.tanh_ ctx (Ad.scale ctx corr 0.25)) 4.0 in
      Ad.mul ctx base (Ad.exp_ ctx corr)

(* ---- batched path ----

   Packs B blocks into matrix ops: every token-LSTM and
   instruction-LSTM timestep becomes one [B x hidden] gemm instead of B
   gemvs.  Sequences are grouped into power-of-two length buckets
   (deterministic: ascending bucket key, insertion order within a
   bucket) and right-padded to the bucket maximum with masks, so each
   row's forward value is bit-identical to the per-sequence [predict]
   path and padded rows contribute exactly zero gradient. *)

type batch_sample = {
  bblock : Dt_x86.Block.t;
  bparams : (float array array * float array) option;
  bfeatures : float array option;
}

let bucket_len len =
  let b = ref 1 in
  while !b < len do
    b := !b * 2
  done;
  !b

(* Group while preserving order: ascending bucket key, and within one
   bucket the original scan order (no Hashtbl iteration anywhere near
   the deterministic substrate). *)
let group_by_key entries =
  let keys =
    List.sort_uniq compare (List.map (fun (k, _) -> k) entries)
  in
  List.map (fun k -> List.filter_map (fun (k', e) -> if k = k' then Some e else None) entries) keys

let head_batch t ctx x =
  match t.head2 with
  | None -> Nn.Linear.forward_batch t.head1 ctx x
  | Some h2 ->
      Nn.Linear.forward_batch h2 ctx
        (Ad.tanh_ ctx (Nn.Linear.forward_batch t.head1 ctx x))

let forward_batch t ctx (samples : batch_sample array) =
  let nb = Array.length samples in
  if nb = 0 then invalid_arg "Model.forward_batch: empty batch";
  Array.iter
    (fun s ->
      (match (t.cfg.with_params, s.bparams) with
      | true, None -> invalid_arg "Model.forward_batch: parameter inputs required"
      | false, Some _ ->
          invalid_arg "Model.forward_batch: unexpected parameter inputs"
      | true, Some (per, _) ->
          if Array.length per <> Array.length s.bblock.instrs then
            invalid_arg
              "Model.forward_batch: per-instruction parameter count mismatch"
      | false, None -> ());
      match (t.cfg.feature_width, s.bfeatures) with
      | 0, Some _ -> invalid_arg "Model.forward_batch: unexpected features"
      | 0, None -> ()
      | w, Some f ->
          if Array.length f <> w then
            invalid_arg "Model.forward_batch: feature width mismatch"
      | _, None -> invalid_arg "Model.forward_batch: features required")
    samples;
  (* Token stage: every instruction of every block, bucketed by
     tokenized length.  [instr_h.(s).(i)] ends up as (bucket output
     node, row) for instruction i of sample s. *)
  (* Placeholder for slots that are always overwritten before use; a
     leaf lives outside the tape so it never perturbs the flow audit. *)
  let dummy_src = (Ad.leaf ~value:(T.scalar 0.0) ~grad:(T.scalar 0.0), 0) in
  let instr_h =
    Array.map
      (fun s -> Array.make (Array.length s.bblock.instrs) dummy_src)
      samples
  in
  let token_entries = ref [] in
  Array.iteri
    (fun s smp ->
      Array.iteri
        (fun i instr ->
          let toks = Array.of_list (Tokenizer.tokens instr) in
          token_entries :=
            (bucket_len (Array.length toks), (s, i, toks)) :: !token_entries)
        smp.bblock.instrs)
    samples;
  List.iter
    (fun group ->
      let group = Array.of_list group in
      let bsz = Array.length group in
      let maxlen =
        Array.fold_left
          (fun acc (_, _, toks) -> max acc (Array.length toks))
          0 group
      in
      let steps =
        List.init maxlen (fun step ->
            let live (_, _, toks) = step < Array.length toks in
            let idx =
              Array.map
                (fun ((_, _, toks) as e) -> if live e then toks.(step) else 0)
                group
            in
            let x = Nn.Embedding.forward_batch t.embedding ctx idx in
            let mask =
              if Array.for_all live group then None
              else Some (Array.map (fun e -> if live e then 1.0 else 0.0) group)
            in
            (x, mask))
      in
      let h = Nn.Lstm.forward_batch t.token_lstm ctx ~batch:bsz steps in
      Array.iteri (fun r (s, i, _) -> instr_h.(s).(i) <- (h, r)) group)
    (group_by_key (List.rev !token_entries));
  (* Instruction stage: blocks bucketed by instruction count, parameter
     vectors appended as one constant matrix per timestep (they are
     plain floats during surrogate training; parameter-table
     optimization keeps the per-sequence path, where gradients flow into
     the table). *)
  let per_w = if t.cfg.with_params then t.cfg.per_instr_params else 0 in
  let glob_w = if t.cfg.with_params then t.cfg.global_params else 0 in
  let pred_src = Array.make nb dummy_src in
  let sample_entries =
    List.init nb (fun s ->
        (bucket_len (Array.length samples.(s).bblock.instrs), s))
  in
  List.iter
    (fun group ->
      let group = Array.of_list group in
      let bsz = Array.length group in
      let ilen s = Array.length samples.(s).bblock.instrs in
      let maxlen = Array.fold_left (fun acc s -> max acc (ilen s)) 0 group in
      let steps =
        List.init maxlen (fun step ->
            let parts =
              Array.map
                (fun s ->
                  if step < ilen s then instr_h.(s).(step)
                  else instr_h.(s).(ilen s - 1))
                group
            in
            let hstack = Ad.stack_rows ctx parts in
            let input =
              if not t.cfg.with_params then hstack
              else begin
                let width = per_w + glob_w in
                let m = T.zeros ~rows:bsz ~cols:width in
                Array.iteri
                  (fun r s ->
                    if step < ilen s then begin
                      let per, glob =
                        match samples.(s).bparams with
                        | Some p -> p
                        | None -> assert false
                      in
                      Array.iteri (fun j v -> T.set m r j v) per.(step);
                      Array.iteri (fun j v -> T.set m r (per_w + j) v) glob
                    end)
                  group;
                Ad.concat_cols ctx [ hstack; Ad.constant ctx m ]
              end
            in
            let mask =
              if Array.for_all (fun s -> step < ilen s) group then None
              else
                Some
                  (Array.map (fun s -> if step < ilen s then 1.0 else 0.0) group)
            in
            (input, mask))
      in
      let block_vec = Nn.Lstm.forward_batch t.instr_lstm ctx ~batch:bsz steps in
      let pred =
        if t.cfg.feature_width = 0 then head_batch t ctx block_vec
        else begin
          let fw = t.cfg.feature_width in
          let feats = T.zeros ~rows:bsz ~cols:fw in
          let base = T.zeros ~rows:bsz ~cols:1 in
          Array.iteri
            (fun r s ->
              let f =
                match samples.(s).bfeatures with
                | Some f -> f
                | None -> assert false
              in
              Array.iteri (fun j v -> T.set feats r j v) f;
              (* Same reduction as the per-sequence reduce_max/max2 pair:
                 strict > keeps the first maximum, then the 0.05 floor. *)
              let best = ref f.(0) in
              Array.iter (fun v -> if v > !best then best := v) f;
              T.set base r 0 (Float.max !best 0.05))
            group;
          let corr =
            head_batch t ctx
              (Ad.concat_cols ctx [ block_vec; Ad.constant ctx feats ])
          in
          let corr = Ad.scale ctx (Ad.tanh_ ctx (Ad.scale ctx corr 0.25)) 4.0 in
          Ad.mul ctx (Ad.constant ctx base) (Ad.exp_ ctx corr)
        end
      in
      Array.iteri (fun r s -> pred_src.(s) <- (pred, r)) group)
    (group_by_key sample_entries);
  Ad.stack_rows ctx pred_src

(* ---- compiled capture ----

   The three entry points below wrap their traces in {!Ad.with_plan}:
   the first couple of calls per signature run interpreted (and record),
   later calls replay the sealed plan.  Capturing at the model level
   subsumes the LSTM layers — their ops are recorded as part of the
   enclosing trace, so `lib/nn` needs no plan awareness of its own.

   Keys are exact — the block texts pin the tokenization and bucket
   structure — while everything per-call (parameter values, features,
   targets, gather indices, pad masks) rebinds during replay.  A key
   collision or structural drift only costs a re-record; it can never
   corrupt results. *)

(* The batched trace's structure depends only on the batch's {e shape
   profile}: per-sample instruction counts and per-instruction token
   counts (they fix the bucket grouping, padding masks, and every op
   shape), never on token identities or parameter values — embedding
   lookups are [stack_rows] gathers whose indices rebind at replay.
   Keying on the profile lets one plan serve every minibatch with the
   same shape, which is what makes replay pay off under shuffled
   training schedules. *)
let batch_key t prefix (samples : batch_sample array) =
  let b = Buffer.create 256 in
  Buffer.add_string b prefix;
  Buffer.add_string b (if t.cfg.with_params then "|p" else "|n");
  Buffer.add_string b (if t.cfg.feature_width > 0 then "f|" else "-|");
  Array.iter
    (fun s ->
      Array.iter
        (fun instr ->
          Buffer.add_string b
            (string_of_int (List.length (Tokenizer.tokens instr)));
          Buffer.add_char b ',')
        s.bblock.instrs;
      Buffer.add_char b ';')
    samples;
  Buffer.contents b

let train_batch t ctx (samples : batch_sample array) ~targets =
  let nb = Array.length samples in
  if Array.length targets <> nb then
    invalid_arg "Model.train_batch: targets length mismatch";
  let per_sample = ref None in
  let loss =
    Ad.with_plan t.pcache ctx ~key:(batch_key t "train" samples) ~grad:true
      ~warmup:2 (fun ctx ->
        let pred = forward_batch t ctx samples in
        let ps = Ad.mape_batch ctx pred ~targets in
        per_sample := Some ps;
        Ad.sum_all ctx ps)
  in
  Ad.backward ctx loss;
  let v = Ad.value (Option.get !per_sample) in
  Array.init nb (fun i -> T.get v i 0)

let predict_batch_value t (samples : batch_sample array) =
  let ctx = t.scratch in
  let pred =
    Ad.with_plan t.pcache ctx ~key:(batch_key t "fwd" samples) ~grad:false
      ~warmup:2 (fun ctx -> forward_batch t ctx samples)
  in
  let v = Ad.value pred in
  Array.init (Array.length samples) (fun i -> T.get v i 0)

let predict_value t (block : Dt_x86.Block.t) ~params ?features () =
  let ctx = t.scratch in
  let key =
    Printf.sprintf "seq|%s|%s|%s"
      (match params with
      | None -> "-"
      | Some (per, glob) ->
          Printf.sprintf "p%d.%d" (Array.length per) (Array.length glob))
      (match features with
      | None -> "-"
      | Some f -> string_of_int (Array.length f))
      (Dt_x86.Block.to_string block)
  in
  let pred =
    Ad.with_plan t.pcache ctx ~key ~grad:false ~warmup:2 (fun ctx ->
        let params =
          Option.map
            (fun (per, glob) ->
              {
                per_instr =
                  Array.map (fun v -> Ad.constant ctx (T.vector v)) per;
                global =
                  (if Array.length glob = 0 then None
                   else Some (Ad.constant ctx (T.vector glob)));
              })
            params
        in
        let features =
          Option.map (fun f -> Ad.constant ctx (T.vector f)) features
        in
        predict t ctx block ~params ~features)
  in
  Ad.scalar_value pred
